//! Boot storm: N diskless hosts mass-loading a program image at once.
//!
//! The paper's §7 capacity argument ("a disk server of this performance
//! can adequately support a reasonable number of client workstations")
//! extrapolates from two-host benches; the cluster deployments that
//! followed — AutoClient farms, shared-root compute clusters — made the
//! scenario literal: hundreds of diskless clients power on together and
//! page their boot image off shared file servers. This module builds
//! that scenario end to end:
//!
//! * a mesh of 3 Mb segments behind a hub gateway, one file-service
//!   shard per segment ([`v_fs::ShardMap`] placement), every shard
//!   serving a clone of the same read-only image catalogue (a
//!   replicated root, sharded routing);
//! * N client hosts spread round-robin over the segments, each running
//!   a `BootClient` program: resolve the owning shard's logical id
//!   with broadcast `GetPid`, then perform the §6.3 two-read program
//!   load ([`v_fs::loader::ProgramLoader`]) — header block, then the
//!   image via `MoveTo`;
//! * clients power on in waves ([`BootStormConfig::wave`]), the
//!   staggered ramp of a building's worth of workstations booting.
//!
//! Every client's image placement hashes to the client's own segment,
//! so page traffic stays local and only the resolution broadcasts cross
//! the gateway — the arrangement the sharded placement exists to
//! produce. The run is fully deterministic; [`BootStormReport::to_json`]
//! is byte-stable across identical runs, which the determinism pinning
//! test relies on.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::{FsCall, FsClientReport};
use v_fs::loader::{install_image, LoadReport, ProgramLoader};
use v_fs::{
    spawn_caching_client, spawn_shard_server, BlockStore, CacheConfig, CacheMode, DiskModel,
    FileServerConfig, ShardMap, BLOCK_SIZE,
};
use v_kernel::naming::Scope;
use v_kernel::{Api, Cluster, ClusterConfig, CpuSpeed, HostId, Outcome, Pid, Program};
use v_net::MeshConfig;
use v_sim::SimDuration;

/// Shape of one boot storm.
#[derive(Debug, Clone)]
pub struct BootStormConfig {
    /// Number of diskless client hosts.
    pub clients: usize,
    /// File-service shards (= mesh segments); each shard's server host
    /// sits on its own segment.
    pub shards: usize,
    /// Program image size in bytes (excluding the header block).
    pub image_size: u32,
    /// Clients powered on per wave.
    pub wave: usize,
    /// Simulated spacing between waves.
    pub wave_spacing: SimDuration,
    /// Processor grade of every host.
    pub cpu: CpuSpeed,
    /// Independent disk arms per shard server
    /// ([`FileServerConfig::disk_arms`]). Storm defaults give every
    /// shard a two-arm unit: under mass load the image reads queue at
    /// the disk, and a second arm overlaps a span's block transfers.
    pub disk_arms: usize,
    /// Per-client block-cache capacity for the post-load reread phase
    /// ([`v_fs::BlockCache`], write-invalidate mode); `0` disables
    /// caching and leaves the storm bit-identical to the pre-cache
    /// engine.
    pub client_cache: usize,
    /// Shared-text blocks each client re-reads per pass after its image
    /// loads (booted workstations page the same system binaries over
    /// and over); `0` skips the reread phase entirely.
    pub reread_blocks: u32,
    /// Passes over the reread working set. The first pass faults the
    /// blocks in; later passes are where a client cache pays.
    pub reread_passes: u32,
}

impl BootStormConfig {
    /// A storm of `clients` hosts with proportionate shard count
    /// (one file-service shard per ~64 clients, within the
    /// [`ShardMap`] id-range limit).
    pub fn new(clients: usize) -> BootStormConfig {
        assert!(clients >= 1, "a boot storm needs at least one client");
        BootStormConfig {
            clients,
            shards: (clients / 64).clamp(2, 16),
            image_size: 8192,
            wave: 64,
            wave_spacing: SimDuration::from_millis(10),
            cpu: CpuSpeed::Mc68000At10MHz,
            disk_arms: 2,
            client_cache: 0,
            reread_blocks: 0,
            reread_passes: 0,
        }
    }
}

/// Aggregate outcome of a boot storm, including the engine counters the
/// `v-bench engine` throughput experiment reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BootStormReport {
    /// Clients configured.
    pub clients: usize,
    /// Shards configured.
    pub shards: usize,
    /// Image size in bytes.
    pub image_bytes: u32,
    /// Clients whose image arrived and verified.
    pub loaded: u64,
    /// Protocol errors across all loads.
    pub errors: u64,
    /// Image verification failures.
    pub integrity_errors: u64,
    /// Clients that never resolved their shard server.
    pub resolve_failures: u64,
    /// Simulated time the whole storm took, milliseconds. Quiescence
    /// time: includes draining the last protocol timers, so it is
    /// coarser than the per-load times below.
    pub sim_ms: f64,
    /// Mean per-client load time (open + header + image), milliseconds
    /// — the metric disk and transport improvements move.
    pub load_ms_mean: f64,
    /// Slowest single client load, milliseconds.
    pub load_ms_max: f64,
    /// Events scheduled by the engine ([`v_sim::SimStats::scheduled`]).
    pub events_scheduled: u64,
    /// Events popped by the engine ([`v_sim::SimStats::popped`]).
    pub events_popped: u64,
    /// Logical events dispatched ([`Cluster::events_dispatched`]) — the
    /// batching-independent count the throughput metric divides by.
    pub events_dispatched: u64,
    /// Frames transmitted across all segments.
    pub frames_sent: u64,
    /// Frame deliveries across all segments.
    pub deliveries: u64,
    /// `GetPid` broadcasts issued by clients.
    pub getpid_broadcasts: u64,
    /// Send retransmissions (contention and loss recovery).
    pub retransmissions: u64,
    /// Bulk-transfer chunks sent (the image pages).
    pub chunks_sent: u64,
    /// Reread-phase operations completed across all clients (0 when the
    /// phase is disabled).
    pub reread_ops: u64,
    /// Mean per-operation latency of the reread phase, milliseconds.
    pub reread_ms_mean: f64,
    /// Reread operations served per simulated second across the whole
    /// cluster — the served-load metric client caching moves.
    pub reread_reqs_per_s: f64,
    /// Client-cache hits during the reread phase.
    pub cache_hits: u64,
}

impl BootStormReport {
    /// Byte-stable JSON rendering (fixed field order, fixed float
    /// precision): two identical runs must serialize identically.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"clients\":{},\"shards\":{},\"image_bytes\":{},",
                "\"loaded\":{},\"errors\":{},\"integrity_errors\":{},",
                "\"resolve_failures\":{},\"sim_ms\":{:.3},",
                "\"load_ms_mean\":{:.3},\"load_ms_max\":{:.3},",
                "\"events_scheduled\":{},\"events_popped\":{},",
                "\"events_dispatched\":{},\"frames_sent\":{},",
                "\"deliveries\":{},\"getpid_broadcasts\":{},",
                "\"retransmissions\":{},\"chunks_sent\":{},",
                "\"reread_ops\":{},\"reread_ms_mean\":{:.3},",
                "\"reread_reqs_per_s\":{:.3},\"cache_hits\":{}}}"
            ),
            self.clients,
            self.shards,
            self.image_bytes,
            self.loaded,
            self.errors,
            self.integrity_errors,
            self.resolve_failures,
            self.sim_ms,
            self.load_ms_mean,
            self.load_ms_max,
            self.events_scheduled,
            self.events_popped,
            self.events_dispatched,
            self.frames_sent,
            self.deliveries,
            self.getpid_broadcasts,
            self.retransmissions,
            self.chunks_sent,
            self.reread_ops,
            self.reread_ms_mean,
            self.reread_reqs_per_s,
            self.cache_hits,
        )
    }
}

/// One booting workstation: broadcast-resolve the owning shard, then
/// run the §6.3 two-read load against it.
struct BootClient {
    logical_id: u32,
    name: String,
    report: Rc<RefCell<LoadReport>>,
    resolve_failures: Rc<RefCell<u64>>,
    inner: Option<ProgramLoader>,
}

impl Program for BootClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match (&mut self.inner, outcome) {
            (None, Outcome::Started) => api.get_pid(self.logical_id, Scope::Both),
            (None, Outcome::GetPid(Some(server))) => {
                let mut loader = ProgramLoader::new(server, self.name.clone(), self.report.clone());
                loader.resume(api, Outcome::Started);
                self.inner = Some(loader);
            }
            (None, _) => {
                *self.resolve_failures.borrow_mut() += 1;
                api.exit();
            }
            (Some(loader), outcome) => loader.resume(api, outcome),
        }
    }
}

/// Runs one boot storm to quiescence and collects the report.
pub fn run_boot_storm(cfg: &BootStormConfig) -> BootStormReport {
    let shards = cfg.shards;
    let map = ShardMap::new(shards);

    let mut cluster_cfg = ClusterConfig::mesh(MeshConfig::star(shards));
    for s in 0..shards {
        cluster_cfg = cluster_cfg.with_host_on(cfg.cpu, s); // server host
    }
    for j in 0..cfg.clients {
        cluster_cfg = cluster_cfg.with_host_on(cfg.cpu, j % shards);
    }
    let mut cl = Cluster::new(cluster_cfg);

    // Replicated read-only root: one master catalogue holding every
    // shard's image name, cloned into every shard server, so file ids
    // agree everywhere and any shard could serve any name.
    let names: Vec<String> = (0..shards)
        .map(|s| map.name_for_shard(s, "bootimage"))
        .collect();
    let mut master = BlockStore::new();
    for name in &names {
        install_image(&mut master, name, cfg.image_size, 0xB7);
    }
    let servers: Vec<Pid> = (0..shards)
        .map(|s| {
            spawn_shard_server(
                &mut cl,
                HostId(s),
                &map,
                s,
                FileServerConfig {
                    disk: DiskModel::fixed(SimDuration::from_millis(2)),
                    disk_arms: cfg.disk_arms,
                    transfer_unit: 4096,
                    cache_mode: if cfg.client_cache > 0 {
                        CacheMode::WriteInvalidate
                    } else {
                        CacheMode::Off
                    },
                    ..FileServerConfig::default()
                },
                master.clone(),
            )
        })
        .collect();
    cl.run(); // every server parked in its Receive

    let reports: Vec<Rc<RefCell<LoadReport>>> = (0..cfg.clients)
        .map(|_| Rc::new(RefCell::new(LoadReport::default())))
        .collect();
    let resolve_failures = Rc::new(RefCell::new(0u64));

    // Power the clients on in waves.
    let mut next = 0;
    while next < cfg.clients {
        let end = (next + cfg.wave.max(1)).min(cfg.clients);
        for (j, report) in reports.iter().enumerate().take(end).skip(next) {
            let shard = j % shards;
            cl.spawn(
                HostId(shards + j),
                "bootclient",
                Box::new(BootClient {
                    logical_id: map.logical_id(shard),
                    name: names[shard].clone(),
                    report: report.clone(),
                    resolve_failures: resolve_failures.clone(),
                    inner: None,
                }),
            );
        }
        next = end;
        if next < cfg.clients {
            let deadline = cl.now() + cfg.wave_spacing;
            cl.run_until(deadline);
        }
    }
    cl.run();
    let storm_ms = cl.now().since(v_sim::SimTime::ZERO).as_millis_f64();

    // Post-load reread phase: every booted client pages the same
    // shared-text span of its image again and again (system binaries,
    // shells — the traffic §6.3 says dominates a diskless workstation's
    // life after boot). With `client_cache` set, the second and later
    // passes hit the per-client block cache instead of the shard server;
    // `reread_reqs_per_s` is the served-load win that buys.
    let mut reread_ops = 0u64;
    let mut reread_ms_mean = 0.0;
    let mut reread_reqs_per_s = 0.0;
    let mut cache_hits = 0u64;
    let mut reread_errors = 0u64;
    let mut reread_integrity = 0u64;
    if cfg.reread_blocks > 0 && cfg.reread_passes > 0 {
        let full_blocks = (cfg.image_size / BLOCK_SIZE as u32).max(1);
        let span = cfg.reread_blocks.min(full_blocks);
        let cache_cfg = if cfg.client_cache > 0 {
            CacheConfig::write_invalidate(cfg.client_cache)
        } else {
            CacheConfig::off()
        };
        let rr_reports: Vec<Rc<RefCell<FsClientReport>>> = (0..cfg.clients)
            .map(|_| Rc::new(RefCell::new(FsClientReport::default())))
            .collect();
        let mut handles = Vec::with_capacity(cfg.clients);
        for (j, report) in rr_reports.iter().enumerate() {
            let shard = j % shards;
            let mut script = vec![FsCall::Open(names[shard].clone())];
            for _ in 0..cfg.reread_passes {
                for b in 0..span {
                    script.push(FsCall::ReadExpect {
                        block: 1 + b,
                        count: BLOCK_SIZE as u32,
                        expect: 0xB7,
                    });
                }
            }
            handles.push(spawn_caching_client(
                &mut cl,
                HostId(shards + j),
                servers[shard],
                script,
                report.clone(),
                &cache_cfg,
            ));
        }
        cl.run();
        // Served load over the phase's busy period — the slowest
        // client's script span — not quiescence time, which is
        // dominated by draining the last protocol timers and would
        // flatten the comparison.
        let mut busy_ms = 0.0f64;
        let mut ms_sum = 0.0;
        for report in &rr_reports {
            let r = report.borrow();
            reread_ops += r.completed;
            reread_errors += r.errors;
            reread_integrity += r.integrity_errors;
            if !r.done {
                reread_errors += 1;
            }
            ms_sum += r.elapsed_ms;
            busy_ms = busy_ms.max(r.elapsed_ms);
        }
        for h in &handles {
            cache_hits += h.stats().hits;
        }
        if reread_ops > 0 {
            reread_ms_mean = ms_sum / reread_ops as f64;
        }
        if busy_ms > 0.0 {
            reread_reqs_per_s = reread_ops as f64 * 1000.0 / busy_ms;
        }
    }

    let mut out = BootStormReport {
        clients: cfg.clients,
        shards,
        image_bytes: cfg.image_size,
        resolve_failures: *resolve_failures.borrow(),
        sim_ms: storm_ms,
        reread_ops,
        reread_ms_mean,
        reread_reqs_per_s,
        cache_hits,
        errors: reread_errors,
        integrity_errors: reread_integrity,
        ..BootStormReport::default()
    };
    let mut load_ms_sum = 0.0;
    for report in &reports {
        let r = report.borrow();
        out.loaded += r.loaded as u64;
        out.errors += r.errors;
        out.integrity_errors += r.integrity_errors;
        if r.loaded {
            load_ms_sum += r.elapsed_ms;
            out.load_ms_max = out.load_ms_max.max(r.elapsed_ms);
        }
    }
    if out.loaded > 0 {
        out.load_ms_mean = load_ms_sum / out.loaded as f64;
    }
    let sim = cl.sim_stats();
    out.events_scheduled = sim.scheduled;
    out.events_popped = sim.popped;
    out.events_dispatched = cl.events_dispatched();
    let medium = cl.medium_stats();
    out.frames_sent = medium.frames_sent;
    out.deliveries = medium.deliveries;
    for h in 0..cl.num_hosts() {
        let k = cl.kernel_stats(HostId(h));
        out.getpid_broadcasts += k.getpid_broadcasts;
        out.retransmissions += k.retransmissions;
        out.chunks_sent += k.chunks_sent;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_loads_every_client() {
        let mut cfg = BootStormConfig::new(8);
        cfg.image_size = 2048;
        let r = run_boot_storm(&cfg);
        assert_eq!(r.loaded, 8, "{r:?}");
        assert_eq!(r.errors, 0);
        assert_eq!(r.integrity_errors, 0);
        assert_eq!(r.resolve_failures, 0);
        assert!(r.getpid_broadcasts >= 8, "every client resolves by name");
        assert!(r.chunks_sent > 0, "images move in MoveTo chunks");
        assert!(r.events_popped > 0 && r.events_scheduled >= r.events_popped);
    }

    #[test]
    fn storm_is_deterministic_run_to_run() {
        // Two in-process runs of the same 512-host storm must agree to
        // the byte: every kernel table iterates in a defined order (the
        // slab/linear-map containers replaced std::HashMap, whose order
        // varies between instances within one process), so nothing in
        // the report may wiggle. Explicitly on two-arm striped disks:
        // the per-arm queues and span splitting must be as replayable
        // as the single-spindle model they generalize.
        let mut cfg = BootStormConfig::new(512);
        cfg.image_size = 2048;
        cfg.disk_arms = 2;
        let first = run_boot_storm(&cfg).to_json();
        let second = run_boot_storm(&cfg).to_json();
        assert_eq!(first, second, "byte-identical reports across runs");
        assert!(first.contains("\"loaded\":512"), "{first}");
    }

    #[test]
    fn second_disk_arm_shortens_the_storm() {
        // The reason the storm defaults to two arms: the image span
        // splits across arms and transfers in parallel, so each load's
        // disk leg shrinks. Judged on per-load time (`load_ms_mean`) —
        // quiescence time also drains the last protocol timers, which
        // quantises away the disk leg.
        let mut one = BootStormConfig::new(2);
        one.image_size = 32 * 1024;
        one.disk_arms = 1;
        let mut two = one.clone();
        two.disk_arms = 2;
        let r1 = run_boot_storm(&one);
        let r2 = run_boot_storm(&two);
        assert_eq!(r1.loaded, 2, "{r1:?}");
        assert_eq!(r2.loaded, 2, "{r2:?}");
        assert!(
            r2.load_ms_mean < r1.load_ms_mean,
            "two arms must beat one: {} ms vs {} ms mean load",
            r2.load_ms_mean,
            r1.load_ms_mean
        );
        assert!(r2.load_ms_max <= r1.load_ms_max);
    }

    #[test]
    fn cached_reread_multiplies_served_load() {
        // Same storm, same reread traffic; only the client cache
        // differs. The cached run must serve the repeat passes locally:
        // hits appear, per-op latency drops, served load climbs.
        let mut uncached = BootStormConfig::new(8);
        uncached.image_size = 8192;
        uncached.reread_blocks = 8;
        uncached.reread_passes = 4;
        let mut cached = uncached.clone();
        cached.client_cache = 64;
        let r0 = run_boot_storm(&uncached);
        let r1 = run_boot_storm(&cached);
        assert_eq!(r0.loaded, 8, "{r0:?}");
        assert_eq!(r1.loaded, 8, "{r1:?}");
        assert_eq!(r0.errors + r0.integrity_errors, 0, "{r0:?}");
        assert_eq!(r1.errors + r1.integrity_errors, 0, "{r1:?}");
        assert_eq!(r0.reread_ops, r1.reread_ops, "identical scripts");
        assert!(r0.reread_ops > 0);
        assert_eq!(r0.cache_hits, 0, "no cache, no hits");
        // 3 of 4 passes over an 8-block set fit a 64-block cache.
        assert_eq!(r1.cache_hits, 8 * 8 * 3, "{r1:?}");
        assert!(
            r1.reread_ms_mean < r0.reread_ms_mean,
            "cached rereads must be faster per op: {} ms vs {} ms",
            r1.reread_ms_mean,
            r0.reread_ms_mean
        );
        assert!(
            r1.reread_reqs_per_s > r0.reread_reqs_per_s,
            "cache hits must raise served load: {} vs {} req/s",
            r1.reread_reqs_per_s,
            r0.reread_reqs_per_s
        );
    }

    #[test]
    fn reread_disabled_reports_zeroes() {
        let mut cfg = BootStormConfig::new(4);
        cfg.image_size = 1024;
        let r = run_boot_storm(&cfg);
        assert_eq!(r.loaded, 4, "{r:?}");
        assert_eq!(r.reread_ops, 0);
        assert_eq!(r.cache_hits, 0);
        assert_eq!(r.reread_ms_mean, 0.0);
        assert_eq!(r.reread_reqs_per_s, 0.0);
    }

    #[test]
    fn storm_crosses_the_old_station_ceiling() {
        // 300 clients + shard servers puts station addresses past the
        // 8-bit space end to end (attach, logical hosts, delivery).
        let mut cfg = BootStormConfig::new(300);
        cfg.image_size = 1024;
        let r = run_boot_storm(&cfg);
        assert_eq!(r.loaded, 300, "{r:?}");
        assert_eq!(r.errors + r.integrity_errors + r.resolve_failures, 0);
    }
}
