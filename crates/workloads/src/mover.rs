//! Standing-grant `MoveTo` / `MoveFrom` loops (the data-transfer rows of
//! Tables 5-1 and 5-2).
//!
//! Measurement shape: a *grantor* sends one message to the *mover*
//! granting read-write access to a buffer, then stays blocked awaiting
//! the reply. The mover performs `n` back-to-back transfers against the
//! standing grant — exactly how the paper isolates the per-`MoveTo` cost
//! from the wrapping message exchange — and finally replies, unblocking
//! the grantor.

use v_kernel::{Access, Api, Message, Outcome, Pid, Program};

use crate::measure::{Probe, RunReport};

/// Which transfer primitive to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveDir {
    /// `MoveTo`: mover pushes into the grantor's buffer.
    To,
    /// `MoveFrom`: mover pulls from the grantor's buffer.
    From,
}

/// Buffer address used in both processes' spaces.
pub const BUF_ADDR: u32 = 0x1000;

/// Grants a buffer to the mover and blocks until it finishes.
pub struct Grantor {
    /// The mover to grant to.
    pub mover: Pid,
    /// Buffer size in bytes.
    pub size: u32,
    /// Fill pattern for `MoveFrom` sources / expected pattern for
    /// `MoveTo` destinations.
    pub pattern: u8,
    /// Direction under test (decides which side verifies content).
    pub dir: MoveDir,
    /// Integrity errors detected are recorded here.
    pub report: Probe<RunReport>,
}

impl Program for Grantor {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(BUF_ADDR, self.size as usize, self.pattern)
                    .expect("buffer fits");
                let mut m = Message::empty();
                m.set_segment(BUF_ADDR, self.size, Access::ReadWrite);
                api.send(m, self.mover);
            }
            Outcome::Send(Ok(_)) => {
                if self.dir == MoveDir::To {
                    // The mover pushed `!pattern`; verify it landed.
                    let got = api.mem_read(BUF_ADDR, self.size as usize).expect("fits");
                    if got.iter().any(|&b| b != !self.pattern) {
                        self.report.borrow_mut().integrity_errors += 1;
                    }
                }
                api.exit();
            }
            _ => {
                self.report.borrow_mut().failures += 1;
                api.exit();
            }
        }
    }
}

/// Receives the grant, performs `n` transfers, then replies.
pub struct Mover {
    /// Transfers to perform.
    pub n: u64,
    /// Bytes per transfer.
    pub size: u32,
    /// Direction under test.
    pub dir: MoveDir,
    /// Pattern expectations (see [`Grantor::pattern`]).
    pub pattern: u8,
    /// Where results accumulate.
    pub report: Probe<RunReport>,
    grantor: Option<Pid>,
    done: u64,
}

impl Mover {
    /// Creates a mover for `n` transfers of `size` bytes.
    pub fn new(n: u64, size: u32, dir: MoveDir, pattern: u8, report: Probe<RunReport>) -> Mover {
        Mover {
            n,
            size,
            dir,
            pattern,
            report,
            grantor: None,
            done: 0,
        }
    }

    fn next_op(&self, api: &mut Api<'_>) {
        let g = self.grantor.expect("grant received");
        match self.dir {
            MoveDir::To => api.move_to(g, BUF_ADDR, BUF_ADDR, self.size),
            MoveDir::From => api.move_from(g, BUF_ADDR, BUF_ADDR, self.size),
        }
    }
}

impl Program for Mover {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                // Source data for MoveTo: complement of the fill pattern.
                api.mem_fill(BUF_ADDR, self.size as usize, !self.pattern)
                    .expect("buffer fits");
                api.receive();
            }
            Outcome::Receive { from, .. } => {
                self.grantor = Some(from);
                self.report.borrow_mut().started = Some(api.now());
                self.next_op(api);
            }
            Outcome::Move(Ok(_)) => {
                self.done += 1;
                self.report.borrow_mut().iterations += 1;
                if self.done < self.n {
                    self.next_op(api);
                } else {
                    if self.dir == MoveDir::From {
                        let got = api.mem_read(BUF_ADDR, self.size as usize).expect("fits");
                        if got.iter().any(|&b| b != self.pattern) {
                            self.report.borrow_mut().integrity_errors += 1;
                        }
                    }
                    self.report.borrow_mut().finished = Some(api.now());
                    let _ = api.reply(Message::empty(), self.grantor.expect("set"));
                    api.exit();
                }
            }
            Outcome::Move(Err(_)) => {
                let mut r = self.report.borrow_mut();
                r.failures += 1;
                r.finished = Some(api.now());
                drop(r);
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::probe;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};

    fn run_move(dir: MoveDir, remote: bool, size: u32, n: u64) -> (f64, RunReport) {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let rep = probe(RunReport::default());
        let mover = cl.spawn(
            HostId(0),
            "mover",
            Box::new(Mover::new(n, size, dir, 0x5A, rep.clone())),
        );
        let ghost = if remote { HostId(1) } else { HostId(0) };
        cl.spawn(
            ghost,
            "grantor",
            Box::new(Grantor {
                mover,
                size,
                pattern: 0x5A,
                dir,
                report: rep.clone(),
            }),
        );
        cl.run();
        let r = rep.borrow().clone();
        (r.per_op_ms(), r)
    }

    #[test]
    fn local_moveto_1024() {
        let (ms, r) = run_move(MoveDir::To, false, 1024, 50);
        assert!(r.clean(), "{r:?}");
        // Paper: 1.26 ms at 8 MHz.
        assert!((ms - 1.26).abs() < 0.1, "local MoveTo = {ms:.3}");
    }

    #[test]
    fn local_movefrom_1024() {
        let (ms, r) = run_move(MoveDir::From, false, 1024, 50);
        assert!(r.clean(), "{r:?}");
        assert!((ms - 1.26).abs() < 0.1, "local MoveFrom = {ms:.3}");
    }

    #[test]
    fn remote_moveto_1024_delivers_data() {
        let (ms, r) = run_move(MoveDir::To, true, 1024, 50);
        assert!(r.clean(), "{r:?}");
        // Paper: 9.05 ms at 8 MHz; pinned tightly by the calibration test.
        assert!((7.0..11.0).contains(&ms), "remote MoveTo = {ms:.3}");
    }

    #[test]
    fn remote_movefrom_1024_delivers_data() {
        let (ms, r) = run_move(MoveDir::From, true, 1024, 50);
        assert!(r.clean(), "{r:?}");
        assert!((7.0..11.0).contains(&ms), "remote MoveFrom = {ms:.3}");
    }
}
