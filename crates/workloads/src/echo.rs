//! Message-exchange ping-pong (the `Send-Receive-Reply` rows of Tables
//! 5-1 and 5-2) and the `GetTime` row.

use v_kernel::{Api, Message, Outcome, Pid, Program};
use v_sim::{SimDuration, SplitMix64};

use crate::measure::{Probe, RunReport};

/// Replies to every message with the message itself, forever.
pub struct EchoServer;

impl Program for EchoServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                // A failed reply means the sender vanished; keep serving.
                let _ = api.reply(msg, from);
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// Performs `n` message exchanges with `server` and records timing.
///
/// An optional per-iteration jitter delay decorrelates concurrent pairs
/// (real workstations are never phase-locked the way a deterministic
/// simulator is); its total is recorded as loop overhead and subtracted
/// from the per-operation time, exactly as the paper subtracts loop
/// artifacts.
pub struct Pinger {
    /// The echo server to exchange with.
    pub server: Pid,
    /// Exchanges to perform.
    pub n: u64,
    /// Where results accumulate.
    pub report: Probe<RunReport>,
    /// Maximum per-iteration jitter (`ZERO` disables).
    jitter_max: SimDuration,
    rng: SplitMix64,
    done: u64,
}

impl Pinger {
    /// Creates a pinger for `n` exchanges.
    pub fn new(server: Pid, n: u64, report: Probe<RunReport>) -> Pinger {
        Pinger {
            server,
            n,
            report,
            jitter_max: SimDuration::ZERO,
            rng: SplitMix64::new(0),
            done: 0,
        }
    }

    /// Adds uniform per-iteration jitter in `[0, max)`.
    pub fn with_jitter(mut self, max: SimDuration, seed: u64) -> Pinger {
        self.jitter_max = max;
        self.rng = SplitMix64::new(seed);
        self
    }

    fn send_next(&self, api: &mut Api<'_>) {
        let mut m = Message::empty();
        m.set_u32(4, self.done as u32);
        api.send(m, self.server);
    }

    fn next_step(&mut self, api: &mut Api<'_>) {
        if self.jitter_max.is_zero() {
            self.send_next(api);
        } else {
            let j = SimDuration::from_nanos(self.rng.below(self.jitter_max.as_nanos().max(1)));
            self.report.borrow_mut().deducted += j;
            api.delay(j);
        }
    }
}

impl Program for Pinger {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                self.report.borrow_mut().started = Some(api.now());
                self.next_step(api);
            }
            Outcome::Delay => self.send_next(api),
            Outcome::Send(Ok(reply)) => {
                let mut r = self.report.borrow_mut();
                if reply.get_u32(4) != self.done as u32 {
                    r.integrity_errors += 1;
                }
                r.iterations += 1;
                drop(r);
                self.done += 1;
                if self.done < self.n {
                    self.next_step(api);
                } else {
                    self.report.borrow_mut().finished = Some(api.now());
                    api.exit();
                }
            }
            Outcome::Send(Err(_)) => {
                let mut r = self.report.borrow_mut();
                r.failures += 1;
                r.finished = Some(api.now());
                drop(r);
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Invokes `GetTime` `n` times (the paper's minimal-kernel-overhead row).
pub struct GetTimeLooper {
    /// Calls to perform.
    pub n: u64,
    /// Where results accumulate.
    pub report: Probe<RunReport>,
}

impl Program for GetTimeLooper {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        if let Outcome::Started = outcome {
            self.report.borrow_mut().started = Some(api.now());
            for _ in 0..self.n {
                let _ = api.get_time();
            }
            let mut r = self.report.borrow_mut();
            r.iterations = self.n;
            r.finished = Some(api.now());
        }
        api.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::probe;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};

    #[test]
    fn local_exchange_loop_completes() {
        let cfg = ClusterConfig::three_mb().with_host(CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let server = cl.spawn(HostId(0), "echo", Box::new(EchoServer));
        let rep = probe(RunReport::default());
        cl.spawn(
            HostId(0),
            "ping",
            Box::new(Pinger::new(server, 100, rep.clone())),
        );
        cl.run();
        let r = rep.borrow();
        assert!(r.clean(), "{r:?}");
        assert_eq!(r.iterations, 100);
        // Paper: 1.00 ms per local exchange at 8 MHz.
        let ms = r.per_op_ms();
        assert!((ms - 1.0).abs() < 0.05, "local SRR = {ms:.3} ms");
    }

    #[test]
    fn remote_exchange_loop_completes() {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
        let rep = probe(RunReport::default());
        cl.spawn(
            HostId(0),
            "ping",
            Box::new(Pinger::new(server, 100, rep.clone())),
        );
        cl.run();
        let r = rep.borrow();
        assert!(r.clean(), "{r:?}");
        // Paper: 3.18 ms per remote exchange at 8 MHz. Wide tolerance
        // here; the calibration test in v-bench pins it tightly.
        let ms = r.per_op_ms();
        assert!((2.5..4.0).contains(&ms), "remote SRR = {ms:.3} ms");
    }

    #[test]
    fn gettime_costs_the_minimal_overhead() {
        let cfg = ClusterConfig::three_mb().with_host(CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let rep = probe(RunReport::default());
        cl.spawn(
            HostId(0),
            "gettime",
            Box::new(GetTimeLooper {
                n: 1000,
                report: rep.clone(),
            }),
        );
        cl.run();
        let r = rep.borrow();
        let ms = r.per_op_ms();
        assert!((ms - 0.07).abs() < 0.005, "GetTime = {ms:.3} ms");
    }
}
