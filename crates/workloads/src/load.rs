//! Program loading: large reads through `MoveTo` (Table 6-3, §8).
//!
//! "The second read, generally consisting of several tens of disk pages,
//! uses MoveTo to transfer the data ... our current VAX file server
//! breaks large read and write operations into MoveTo and MoveFrom
//! operations of at most 4 kilobytes at a time." The *transfer unit* is
//! the bytes moved per `MoveTo`; Table 6-3 sweeps it from 1 KB to 64 KB
//! over a 64 KB read.

use v_kernel::{Access, Api, Message, Outcome, Pid, Program};

use crate::measure::{Probe, RunReport};

/// Image buffer address in both spaces.
pub const IMAGE_ADDR: u32 = 0x10000;

/// Serves whole-image reads, chunked into `MoveTo`s of one transfer unit.
pub struct LoadServer {
    /// Image size in bytes.
    pub image: u32,
    /// Bytes per `MoveTo`.
    pub transfer_unit: u32,
    /// Image fill pattern.
    pub pattern: u8,
    /// Failure records.
    pub report: Probe<RunReport>,
    /// In-progress read: (client, client buffer, bytes pushed so far).
    current: Option<(Pid, u32, u32)>,
}

impl LoadServer {
    /// Creates a load server.
    pub fn new(
        image: u32,
        transfer_unit: u32,
        pattern: u8,
        report: Probe<RunReport>,
    ) -> LoadServer {
        LoadServer {
            image,
            transfer_unit,
            pattern,
            report,
            current: None,
        }
    }

    fn push_next(&mut self, api: &mut Api<'_>) {
        let (client, buf, pushed) = self.current.expect("read in progress");
        let n = self.transfer_unit.min(self.image - pushed);
        api.move_to(client, buf + pushed, IMAGE_ADDR + pushed, n);
    }
}

impl Program for LoadServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(IMAGE_ADDR, self.image as usize, self.pattern)
                    .expect("image fits");
                api.receive();
            }
            Outcome::Receive { from, msg } => {
                let buf = msg.get_u32(12);
                self.current = Some((from, buf, 0));
                self.push_next(api);
            }
            Outcome::Move(Ok(n)) => {
                let (client, buf, pushed) = self.current.expect("read in progress");
                let pushed = pushed + n;
                if pushed < self.image {
                    self.current = Some((client, buf, pushed));
                    self.push_next(api);
                } else {
                    self.current = None;
                    let mut reply = Message::empty();
                    reply.set_u32(8, pushed);
                    let _ = api.reply(reply, client);
                    api.receive();
                }
            }
            Outcome::Move(Err(_)) => {
                self.report.borrow_mut().failures += 1;
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Requests whole-image reads `n` times.
pub struct LoadClient {
    /// The server.
    pub server: Pid,
    /// Image size in bytes.
    pub image: u32,
    /// Reads to perform.
    pub n: u64,
    /// Expected pattern (integrity check after the first read).
    pub pattern: u8,
    /// Where results accumulate.
    pub report: Probe<RunReport>,
    done: u64,
}

impl LoadClient {
    /// Creates a load client.
    pub fn new(
        server: Pid,
        image: u32,
        n: u64,
        pattern: u8,
        report: Probe<RunReport>,
    ) -> LoadClient {
        LoadClient {
            server,
            image,
            n,
            pattern,
            report,
            done: 0,
        }
    }

    fn request(&self, api: &mut Api<'_>) {
        let mut m = Message::empty();
        m.set_u32(8, self.image);
        m.set_u32(12, IMAGE_ADDR);
        m.set_segment(IMAGE_ADDR, self.image, Access::Write);
        api.send(m, self.server);
    }
}

impl Program for LoadClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                self.report.borrow_mut().started = Some(api.now());
                self.request(api);
            }
            Outcome::Send(Ok(reply)) => {
                if reply.get_u32(8) != self.image {
                    self.report.borrow_mut().integrity_errors += 1;
                }
                if self.done == 0 {
                    let got = api.mem_read(IMAGE_ADDR, self.image as usize).expect("fits");
                    if got.iter().any(|&b| b != self.pattern) {
                        self.report.borrow_mut().integrity_errors += 1;
                    }
                }
                self.done += 1;
                self.report.borrow_mut().iterations += 1;
                if self.done < self.n {
                    self.request(api);
                } else {
                    self.report.borrow_mut().finished = Some(api.now());
                    api.exit();
                }
            }
            Outcome::Send(Err(_)) => {
                let mut r = self.report.borrow_mut();
                r.failures += 1;
                r.finished = Some(api.now());
                drop(r);
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::probe;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};

    fn run_load(remote: bool, unit: u32) -> (f64, RunReport) {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let rep = probe(RunReport::default());
        let server = cl.spawn(
            HostId(if remote { 1 } else { 0 }),
            "loadserver",
            Box::new(LoadServer::new(65536, unit, 0x42, rep.clone())),
        );
        cl.spawn(
            HostId(0),
            "loadclient",
            Box::new(LoadClient::new(server, 65536, 3, 0x42, rep.clone())),
        );
        cl.run();
        let r = rep.borrow().clone();
        (r.per_op_ms(), r)
    }

    #[test]
    fn local_load_64k_units() {
        let (ms, r) = run_load(false, 65536);
        assert!(r.clean(), "{r:?}");
        // Paper: 59.7 ms.
        assert!((50.0..70.0).contains(&ms), "local 64K load = {ms:.1}");
    }

    #[test]
    fn remote_load_64k_units_delivers_image() {
        let (ms, r) = run_load(true, 65536);
        assert!(r.clean(), "{r:?}");
        // Paper: 335.4 ms.
        assert!((280.0..400.0).contains(&ms), "remote 64K load = {ms:.1}");
    }

    #[test]
    fn smaller_transfer_units_cost_more() {
        let (u1, _) = run_load(true, 1024);
        let (u16, _) = run_load(true, 16384);
        let (u64k, _) = run_load(true, 65536);
        assert!(u1 > u16 && u16 > u64k, "{u1:.0} > {u16:.0} > {u64k:.0}");
    }
}
