//! The chaos scenario harness: replayable fault schedules.
//!
//! The paper's evaluation assumes every workstation stays up; the
//! interesting questions about a diskless-workstation deployment start
//! when one doesn't. A [`FaultSchedule`] is a small DSL over
//! [`v_sim::Timeline`] composing *timed* fault events — host crash and
//! restart, gateway failure and repair, fault-plan swaps (loss bursts,
//! full partitions) — that [`run_with_faults`] replays against a live
//! cluster deterministically: the cluster runs to each scheduled
//! instant, the fault is applied, and the run continues. Two runs of the
//! same seed and schedule are bit-for-bit identical.
//!
//! ```
//! use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
//! use v_sim::SimTime;
//! use v_workloads::chaos::{Fault, FaultSchedule};
//!
//! let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz));
//! let schedule = FaultSchedule::new()
//!     .crash_at(SimTime::from_millis(50), HostId(1))
//!     .restart_at(SimTime::from_millis(400), HostId(1));
//! v_workloads::chaos::run_with_faults(&mut cl, schedule);
//! assert!(cl.host_is_up(HostId(1)));
//! ```

use v_kernel::{Cluster, HostId};
use v_net::FaultPlan;
use v_sim::{SimTime, Timeline};

/// One externally injected fault (or repair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Crash a host: its kernel state is lost and its interface goes
    /// silent ([`Cluster::crash_host`]).
    CrashHost(HostId),
    /// Restart a crashed host with an empty kernel
    /// ([`Cluster::restart_host`]). Scenarios respawn services
    /// themselves — the kernel does not remember what ran before.
    RestartHost(HostId),
    /// Take a mesh gateway out of service; routes recompute without it
    /// and the mesh may partition ([`Cluster::fail_gateway`]).
    FailGateway(usize),
    /// Return a mesh gateway to service ([`Cluster::restore_gateway`]).
    RestoreGateway(usize),
    /// Swap the transport's fault plan — a lossy period, a corruption
    /// burst, or (with loss 1.0) a full partition of the medium.
    SetFaults(FaultPlan),
    /// Heal the medium: restore the empty fault plan.
    ClearFaults,
}

/// A replayable, time-ordered script of [`Fault`] events.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    timeline: Timeline<Fault>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Adds an arbitrary fault at `at`. Events may be added in any
    /// order; they replay in time order, ties in insertion order.
    pub fn at(mut self, at: SimTime, fault: Fault) -> FaultSchedule {
        self.timeline.push(at, fault);
        self
    }

    /// Sugar: crash `host` at `at`.
    pub fn crash_at(self, at: SimTime, host: HostId) -> FaultSchedule {
        self.at(at, Fault::CrashHost(host))
    }

    /// Sugar: restart `host` at `at`.
    pub fn restart_at(self, at: SimTime, host: HostId) -> FaultSchedule {
        self.at(at, Fault::RestartHost(host))
    }

    /// Sugar: a partition of the whole medium over `[from, until)` —
    /// loss 1.0 installed at `from`, the empty plan restored at `until`.
    pub fn partition_between(self, from: SimTime, until: SimTime) -> FaultSchedule {
        self.at(from, Fault::SetFaults(FaultPlan::with_loss(1.0)))
            .at(until, Fault::ClearFaults)
    }

    /// Number of events remaining.
    pub fn len(&self) -> usize {
        self.timeline.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty()
    }

    /// Removes and returns the earliest remaining event.
    pub fn pop(&mut self) -> Option<(SimTime, Fault)> {
        self.timeline.pop()
    }
}

/// Applies one fault to the cluster, immediately.
pub fn apply_fault(cl: &mut Cluster, fault: Fault) {
    match fault {
        Fault::CrashHost(h) => cl.crash_host(h),
        Fault::RestartHost(h) => cl.restart_host(h),
        Fault::FailGateway(g) => {
            cl.fail_gateway(g);
        }
        Fault::RestoreGateway(g) => {
            cl.restore_gateway(g);
        }
        Fault::SetFaults(plan) => cl.set_faults(plan),
        Fault::ClearFaults => cl.set_faults(FaultPlan::NONE),
    }
}

/// Replays `schedule` against `cl`: runs the cluster up to each event's
/// instant, applies it, then runs the remainder to quiescence.
///
/// Events scheduled in the past (before `cl.now()`) apply immediately,
/// in order — a schedule is a script, not a promise of exact instants
/// once the cluster has already run past them.
pub fn run_with_faults(cl: &mut Cluster, mut schedule: FaultSchedule) {
    while let Some((at, fault)) = schedule.pop() {
        if at > cl.now() {
            cl.run_until(at);
        }
        apply_fault(cl, fault);
    }
    cl.run();
}

#[cfg(test)]
mod tests {
    use super::*;
    use v_kernel::{Api, ClusterConfig, CpuSpeed, Message, Outcome, Program};

    fn two_hosts() -> Cluster {
        Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz))
    }

    #[test]
    fn schedule_replays_in_time_order() {
        let mut sched = FaultSchedule::new()
            .restart_at(SimTime::from_millis(20), HostId(1))
            .crash_at(SimTime::from_millis(10), HostId(1));
        assert_eq!(sched.len(), 2);
        let (t1, f1) = sched.pop().unwrap();
        assert_eq!(
            (t1, f1),
            (SimTime::from_millis(10), Fault::CrashHost(HostId(1)))
        );
        let (t2, f2) = sched.pop().unwrap();
        assert_eq!(
            (t2, f2),
            (SimTime::from_millis(20), Fault::RestartHost(HostId(1)))
        );
        assert!(sched.is_empty());
    }

    #[test]
    fn crash_and_restart_apply_at_their_instants() {
        let mut cl = two_hosts();
        let sched = FaultSchedule::new()
            .crash_at(SimTime::from_millis(5), HostId(1))
            .restart_at(SimTime::from_millis(50), HostId(1));
        run_with_faults(&mut cl, sched);
        assert!(cl.host_is_up(HostId(1)));
        assert_eq!(cl.kernel_stats(HostId(1)).crashes, 1);
        assert_eq!(cl.kernel_stats(HostId(1)).restarts, 1);
    }

    #[test]
    fn identical_seed_and_schedule_replay_identically() {
        // A ping-pong pair under a mid-run crash: both runs must land on
        // exactly the same counters at exactly the same instants.
        struct Echo;
        impl Program for Echo {
            fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
                match outcome {
                    Outcome::Started => api.receive(),
                    Outcome::Receive { from, msg } => {
                        let _ = api.reply(msg, from);
                        api.receive();
                    }
                    _ => api.exit(),
                }
            }
        }
        struct Caller {
            to: v_kernel::Pid,
            left: u32,
        }
        impl Program for Caller {
            fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
                match outcome {
                    Outcome::Started | Outcome::Send(Ok(_)) if self.left > 0 => {
                        self.left -= 1;
                        api.send(Message::empty(), self.to);
                    }
                    _ => api.exit(),
                }
            }
        }
        let run = || {
            let mut cl = two_hosts();
            let server = cl.spawn(HostId(1), "echo", Box::new(Echo));
            cl.spawn(
                HostId(0),
                "caller",
                Box::new(Caller {
                    to: server,
                    left: 500,
                }),
            );
            let sched = FaultSchedule::new().crash_at(SimTime::from_millis(40), HostId(1));
            run_with_faults(&mut cl, sched);
            (
                cl.now(),
                cl.kernel_stats(HostId(0)).host_down_failures,
                cl.kernel_stats(HostId(0)).retransmissions,
                cl.medium_stats().frames_sent,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "replay must be deterministic");
        assert!(a.1 >= 1, "the caller must notice the crash: {a:?}");
    }

    #[test]
    fn partition_heals_on_schedule() {
        // An exchange issued inside the partition window is lost, but
        // the retransmission after the heal completes it.
        struct Echo;
        impl Program for Echo {
            fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
                match outcome {
                    Outcome::Started => api.receive(),
                    Outcome::Receive { from, msg } => {
                        let _ = api.reply(msg, from);
                        api.exit();
                    }
                    _ => api.exit(),
                }
            }
        }
        struct Once {
            to: v_kernel::Pid,
        }
        impl Program for Once {
            fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
                match outcome {
                    Outcome::Started => api.send(Message::empty(), self.to),
                    Outcome::Send(r) => {
                        assert!(r.is_ok(), "exchange must survive the healed partition");
                        api.exit();
                    }
                    _ => api.exit(),
                }
            }
        }
        let mut cl = two_hosts();
        let server = cl.spawn(HostId(1), "echo", Box::new(Echo));
        cl.spawn(HostId(0), "once", Box::new(Once { to: server }));
        let sched = FaultSchedule::new().partition_between(SimTime::ZERO, SimTime::from_millis(30));
        run_with_faults(&mut cl, sched);
        assert!(cl.kernel_stats(HostId(0)).retransmissions >= 1);
        assert_eq!(cl.kernel_stats(HostId(0)).host_down_failures, 0);
    }
}
