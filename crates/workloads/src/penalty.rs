//! The network-penalty measurement (Table 4-1).
//!
//! "The network penalty is obtained by measuring the time to transmit n
//! bytes from the main memory of one workstation to the main memory of
//! another and vice versa and dividing the total time for the experiment
//! by 2. ... The transfers are implemented at the data link layer and at
//! the interrupt level so that no protocol or process switching overhead
//! appears in the results."
//!
//! Implemented as a pair of raw handlers below the IPC layer: the
//! initiator sends an n-byte datagram, the reflector bounces it, `n`
//! round trips are timed and halved.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::raw::{RawCtx, RawHandler};
use v_net::{EtherType, Frame, MacAddr};
use v_sim::{SimDuration, SimTime};

/// Shared measurement state.
#[derive(Debug, Default)]
pub struct PenaltyState {
    /// Round trips completed.
    pub done: u64,
    /// Round trips requested.
    pub target: u64,
    /// First transmission instant.
    pub started: Option<SimTime>,
    /// Last reception instant.
    pub finished: Option<SimTime>,
    /// Payload mismatches observed.
    pub integrity_errors: u64,
}

impl PenaltyState {
    /// One-way network penalty per the paper's definition (total / 2n).
    pub fn penalty_ms(&self) -> f64 {
        if self.done == 0 {
            return 0.0;
        }
        let s = self.started.expect("started");
        let f = self.finished.expect("finished");
        f.since(s).as_millis_f64() / (2.0 * self.done as f64)
    }
}

/// Initiating side of the ping-pong.
pub struct PenaltyInitiator {
    /// Peer station.
    pub peer: MacAddr,
    /// Datagram size in bytes.
    pub size: usize,
    /// Shared state.
    pub state: Rc<RefCell<PenaltyState>>,
}

impl PenaltyInitiator {
    fn payload(&self, round: u64) -> Vec<u8> {
        let mut p = vec![(round & 0xFF) as u8; self.size];
        if !p.is_empty() {
            p[0] = 0xA5;
        }
        p
    }
}

impl RawHandler for PenaltyInitiator {
    fn on_frame(&mut self, ctx: &mut dyn RawCtx, frame: &Frame) {
        let mut st = self.state.borrow_mut();
        if frame.payload.len() != self.size {
            st.integrity_errors += 1;
        }
        st.done += 1;
        st.finished = Some(ctx.now());
        let done = st.done;
        let target = st.target;
        drop(st);
        if done < target {
            ctx.send_frame(self.peer, self.payload(done));
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn RawCtx, _token: u64) {
        // Kick-off: record the start and launch the first datagram.
        self.state.borrow_mut().started = Some(ctx.now());
        ctx.send_frame(self.peer, self.payload(0));
    }
}

/// Reflecting side: bounce every datagram straight back.
pub struct PenaltyReflector;

impl RawHandler for PenaltyReflector {
    fn on_frame(&mut self, ctx: &mut dyn RawCtx, frame: &Frame) {
        let back = frame.src;
        ctx.send_frame(back, frame.payload.clone());
    }

    fn on_timer(&mut self, _ctx: &mut dyn RawCtx, _token: u64) {}
}

/// Runs the Table 4-1 experiment for one datagram size on `cluster`
/// hosts 0 and 1; returns the measured one-way penalty in ms.
pub fn measure_penalty(
    cluster: &mut v_kernel::Cluster,
    size: usize,
    rounds: u64,
) -> (f64, Rc<RefCell<PenaltyState>>) {
    use v_kernel::HostId;
    let state = Rc::new(RefCell::new(PenaltyState {
        target: rounds,
        ..PenaltyState::default()
    }));
    let peer = cluster.mac(HostId(1));
    cluster.register_raw_handler(
        HostId(0),
        EtherType::RAW_BENCH,
        Box::new(PenaltyInitiator {
            peer,
            size,
            state: state.clone(),
        }),
    );
    cluster.register_raw_handler(HostId(1), EtherType::RAW_BENCH, Box::new(PenaltyReflector));
    cluster.poke_raw_handler(HostId(0), EtherType::RAW_BENCH, 0, SimDuration::ZERO);
    cluster.run();
    let ms = state.borrow().penalty_ms();
    (ms, state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use v_kernel::{Cluster, ClusterConfig, CostModel, CpuSpeed};
    use v_net::NetParams;

    #[test]
    fn measured_penalty_matches_analytic_model() {
        for (cpu, n) in [
            (CpuSpeed::Mc68000At8MHz, 64usize),
            (CpuSpeed::Mc68000At8MHz, 1024),
            (CpuSpeed::Mc68000At10MHz, 512),
        ] {
            let cfg = ClusterConfig::three_mb().with_hosts(2, cpu);
            let kind = cfg.network;
            let mut cl = Cluster::new(cfg);
            let (ms, st) = measure_penalty(&mut cl, n, 200);
            assert_eq!(st.borrow().integrity_errors, 0);
            let model = CostModel::for_speed(cpu)
                .network_penalty(&NetParams::for_kind(kind), n)
                .as_millis_f64();
            let err = (ms - model).abs() / model;
            assert!(err < 0.02, "n={n}: measured {ms:.3} vs model {model:.3}");
        }
    }

    #[test]
    fn penalty_8mhz_matches_paper_values() {
        // Table 4-1, 8 MHz column.
        for (n, paper) in [
            (64usize, 0.80),
            (128, 1.20),
            (256, 2.00),
            (512, 3.65),
            (1024, 6.95),
        ] {
            let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
            let mut cl = Cluster::new(cfg);
            let (ms, _) = measure_penalty(&mut cl, n, 200);
            let err = (ms - paper).abs() / paper;
            assert!(err < 0.10, "n={n}: measured {ms:.3} vs paper {paper}");
        }
    }
}
