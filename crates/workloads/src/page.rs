//! Random page-level file access between two processes (Table 6-1).
//!
//! A page **read** is `Send — Receive — ReplyWithSegment`; a page
//! **write** is `Send(+appended segment) — ReceiveWithSegment — Reply`.
//! The basic Thoth forms (`...MoveTo...` / `...MoveFrom...`) are also
//! implemented; running them in a cluster configured with
//! `appended_segments = false` reproduces the *unmodified* kernel the
//! paper compares against ("the segment mechanism saves 3.5 ms").

use v_kernel::{Access, Api, Message, Outcome, Pid, Program};

use crate::measure::{Probe, RunReport};

/// Page operation opcode (message byte 1; byte 0 holds the kernel's
/// segment flag bits).
const OP_READ: u8 = 1;
/// Write opcode.
const OP_WRITE: u8 = 2;

/// Server-side page buffer address.
pub const SERVER_BUF: u32 = 0x4000;
/// Client-side page buffer address.
pub const CLIENT_BUF: u32 = 0x2000;

/// How the server moves page data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageMode {
    /// `ReceiveWithSegment` / `ReplyWithSegment` (the paper's extension).
    Segment,
    /// Plain `Receive` + `MoveTo`/`MoveFrom` (basic Thoth primitives).
    Thoth,
}

/// Which operation the client benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOp {
    /// Page reads.
    Read,
    /// Page writes.
    Write,
}

/// Serves page reads and writes from an in-memory page (the paper's
/// Table 6-1 measures exactly this: no disk in the loop).
pub struct PageServer {
    /// Transfer mechanism.
    pub mode: PageMode,
    /// Page size in bytes.
    pub page: u32,
    /// Fill pattern served on reads.
    pub pattern: u8,
    /// Failures/integrity records.
    pub report: Probe<RunReport>,
    /// Pending Thoth-write state: (client, client buffer address, count).
    pending_write: Option<(Pid, u32, u32)>,
    /// Pending Thoth-read state.
    pending_read: Option<(Pid, u32, u32)>,
}

impl PageServer {
    /// Creates a page server.
    pub fn new(mode: PageMode, page: u32, pattern: u8, report: Probe<RunReport>) -> PageServer {
        PageServer {
            mode,
            page,
            pattern,
            report,
            pending_write: None,
            pending_read: None,
        }
    }

    fn rearm(&self, api: &mut Api<'_>) {
        match self.mode {
            PageMode::Segment => api.receive_with_segment(SERVER_BUF, self.page),
            PageMode::Thoth => api.receive(),
        }
    }

    fn handle_request(&mut self, api: &mut Api<'_>, from: Pid, msg: Message, seg_len: u32) {
        let op = msg.byte(1);
        let count = msg.get_u32(8);
        let client_buf = msg.get_u32(12);
        match (op, self.mode) {
            (OP_READ, PageMode::Segment) => {
                let mut reply = Message::empty();
                reply.set_u32(8, count);
                if api
                    .reply_with_segment(reply, from, client_buf, SERVER_BUF, count)
                    .is_err()
                {
                    self.report.borrow_mut().failures += 1;
                }
                self.rearm(api);
            }
            (OP_READ, PageMode::Thoth) => {
                // Push the page with MoveTo, then reply.
                self.pending_read = Some((from, client_buf, count));
                api.move_to(from, client_buf, SERVER_BUF, count);
            }
            (OP_WRITE, PageMode::Segment) => {
                // Data arrived appended to the request.
                if seg_len != count {
                    self.report.borrow_mut().integrity_errors += 1;
                }
                let mut reply = Message::empty();
                reply.set_u32(8, seg_len);
                let _ = api.reply(reply, from);
                self.rearm(api);
            }
            (OP_WRITE, PageMode::Thoth) => {
                self.pending_write = Some((from, msg.get_u32(16), count));
                // Fetch the data from the client's granted segment.
                api.move_from(from, SERVER_BUF, msg.get_u32(16), count);
            }
            _ => {
                self.report.borrow_mut().failures += 1;
                self.rearm(api);
            }
        }
    }
}

impl Program for PageServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(SERVER_BUF, self.page as usize, self.pattern)
                    .expect("page fits");
                self.rearm(api);
            }
            Outcome::Receive { from, msg } => self.handle_request(api, from, msg, 0),
            Outcome::ReceiveSeg { from, msg, seg_len } => {
                self.handle_request(api, from, msg, seg_len)
            }
            Outcome::Move(Ok(n)) => {
                let (from, count) = if let Some((from, _, count)) = self.pending_read.take() {
                    (from, count)
                } else if let Some((from, _, count)) = self.pending_write.take() {
                    (from, count)
                } else {
                    api.exit();
                    return;
                };
                if n != count {
                    self.report.borrow_mut().integrity_errors += 1;
                }
                let mut reply = Message::empty();
                reply.set_u32(8, n);
                let _ = api.reply(reply, from);
                self.rearm(api);
            }
            Outcome::Move(Err(_)) => {
                self.report.borrow_mut().failures += 1;
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Performs `n` page reads or writes against a [`PageServer`].
pub struct PageClient {
    /// The server.
    pub server: Pid,
    /// Operation under test.
    pub op: PageOp,
    /// Page size in bytes.
    pub page: u32,
    /// Iterations.
    pub n: u64,
    /// Expected server pattern (read verification).
    pub pattern: u8,
    /// Where results accumulate.
    pub report: Probe<RunReport>,
    done: u64,
}

impl PageClient {
    /// Creates a page client.
    pub fn new(
        server: Pid,
        op: PageOp,
        page: u32,
        n: u64,
        pattern: u8,
        report: Probe<RunReport>,
    ) -> PageClient {
        PageClient {
            server,
            op,
            page,
            n,
            pattern,
            report,
            done: 0,
        }
    }

    fn next_op(&self, api: &mut Api<'_>) {
        let mut m = Message::empty();
        m.set_u32(8, self.page);
        m.set_u32(12, CLIENT_BUF);
        m.set_u32(16, CLIENT_BUF);
        match self.op {
            PageOp::Read => {
                m.set_byte(1, OP_READ);
                // Grant write access so the server (kernel) can deposit
                // the page into our buffer.
                m.set_segment(CLIENT_BUF, self.page, Access::Write);
            }
            PageOp::Write => {
                m.set_byte(1, OP_WRITE);
                // Grant read access; the kernel appends the first part of
                // the segment to the Send packet.
                m.set_segment(CLIENT_BUF, self.page, Access::Read);
            }
        }
        api.send(m, self.server);
    }
}

impl Program for PageClient {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                api.mem_fill(CLIENT_BUF, self.page as usize, 0xC3)
                    .expect("page fits");
                self.report.borrow_mut().started = Some(api.now());
                self.next_op(api);
            }
            Outcome::Send(Ok(reply)) => {
                if reply.get_u32(8) != self.page {
                    self.report.borrow_mut().integrity_errors += 1;
                }
                if self.op == PageOp::Read && self.done == 0 {
                    // Verify the first page landed intact.
                    let got = api.mem_read(CLIENT_BUF, self.page as usize).expect("fits");
                    if got.iter().any(|&b| b != self.pattern) {
                        self.report.borrow_mut().integrity_errors += 1;
                    }
                }
                self.done += 1;
                self.report.borrow_mut().iterations += 1;
                if self.done < self.n {
                    self.next_op(api);
                } else {
                    self.report.borrow_mut().finished = Some(api.now());
                    api.exit();
                }
            }
            Outcome::Send(Err(_)) => {
                let mut r = self.report.borrow_mut();
                r.failures += 1;
                r.finished = Some(api.now());
                drop(r);
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::probe;
    use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};

    fn run_page(op: PageOp, mode: PageMode, remote: bool) -> (f64, RunReport) {
        let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        if mode == PageMode::Thoth {
            // Reproduce the unmodified kernel: no appended segments.
            cfg.protocol.appended_segments = false;
        }
        let mut cl = Cluster::new(cfg);
        let rep = probe(RunReport::default());
        let server = cl.spawn(
            HostId(if remote { 1 } else { 0 }),
            "pageserver",
            Box::new(PageServer::new(mode, 512, 0x7E, rep.clone())),
        );
        cl.spawn(
            HostId(0),
            "pageclient",
            Box::new(PageClient::new(server, op, 512, 50, 0x7E, rep.clone())),
        );
        cl.run();
        let r = rep.borrow().clone();
        (r.per_op_ms(), r)
    }

    #[test]
    fn remote_page_read_segment_mode() {
        let (ms, r) = run_page(PageOp::Read, PageMode::Segment, true);
        assert!(r.clean(), "{r:?}");
        // Paper Table 6-1: 5.56 ms at 10 MHz.
        assert!((4.5..6.5).contains(&ms), "page read = {ms:.3}");
    }

    #[test]
    fn remote_page_write_segment_mode() {
        let (ms, r) = run_page(PageOp::Write, PageMode::Segment, true);
        assert!(r.clean(), "{r:?}");
        assert!((4.5..6.5).contains(&ms), "page write = {ms:.3}");
    }

    #[test]
    fn local_page_read() {
        let (ms, r) = run_page(PageOp::Read, PageMode::Segment, false);
        assert!(r.clean(), "{r:?}");
        // Paper: 1.31 ms at 10 MHz.
        assert!((1.0..1.7).contains(&ms), "local page read = {ms:.3}");
    }

    #[test]
    fn thoth_mode_write_is_slower() {
        let (seg, r1) = run_page(PageOp::Write, PageMode::Segment, true);
        let (thoth, r2) = run_page(PageOp::Write, PageMode::Thoth, true);
        assert!(r1.clean() && r2.clean());
        // Paper: 8.1 ms vs 5.6 ms — the segment mechanism saves ~3.5 ms.
        assert!(
            thoth - seg > 1.5,
            "expected Thoth write >> segment write, got {thoth:.2} vs {seg:.2}"
        );
    }

    #[test]
    fn thoth_mode_read_is_slower() {
        let (seg, _) = run_page(PageOp::Read, PageMode::Segment, true);
        let (thoth, _) = run_page(PageOp::Read, PageMode::Thoth, true);
        assert!(
            thoth - seg > 1.5,
            "expected Thoth read >> segment read, got {thoth:.2} vs {seg:.2}"
        );
    }
}
