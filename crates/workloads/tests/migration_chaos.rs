//! Live migration under the chaos harness: crashes on either side of
//! the move must never lose a file or an operation, and a replayed
//! fault schedule must reproduce the run bit-for-bit.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::{FsCall, FsClientReport};
use v_fs::disk::DiskModel;
use v_fs::store::BlockStore;
use v_fs::{
    spawn_rebalancer, spawn_shard_service, FileServerConfig, RebalancerConfig, ShardHandle,
    ShardMap, ShardOverlay, ShardService, ShardedFsClient, BLOCK_SIZE,
};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::{SimDuration, SimTime};
use v_workloads::chaos::{run_with_faults, FaultSchedule};

/// Everything a chaos scenario needs a handle on after setup.
struct HotShards {
    services: Vec<ShardService>,
    reports: Vec<Rc<RefCell<FsClientReport>>>,
    ledger: Rc<RefCell<v_fs::MigrationLedger>>,
    overlay: Rc<RefCell<ShardOverlay>>,
    script_len: u64,
    names: Vec<String>,
}

/// Shard 0 on host 0 holding two hot files, shard 1 (empty) on host 1,
/// one streaming client per file on hosts 2–3, a rebalancer on host 2
/// sampling at 30 ms.
fn hot_shard_setup(cl: &mut Cluster) -> HotShards {
    let map = ShardMap::new(2);
    let hot_a = map.name_for_shard(0, "hotA");
    let hot_b = map.name_for_shard(0, "hotB");
    let mut services = Vec::new();
    for shard in 0..2 {
        let mut store = BlockStore::with_id_base(map.id_base(shard));
        if shard == 0 {
            store
                .create_with(&hot_a, &vec![0xA1; 4 * BLOCK_SIZE])
                .unwrap();
            store
                .create_with(&hot_b, &vec![0xB2; 4 * BLOCK_SIZE])
                .unwrap();
        }
        let fs_cfg = FileServerConfig {
            disk: DiskModel::fixed(SimDuration::from_millis(1)),
            register: None,
            ..FileServerConfig::default()
        };
        services.push(spawn_shard_service(
            cl,
            HostId(shard),
            &map,
            shard,
            fs_cfg,
            store,
        ));
    }
    cl.run(); // services reach their Receive

    // Open once, stream reads past the sampling interval, close with a
    // write+read pair that proves the file still takes writes wherever
    // (and in whatever state) the chaos left it.
    let script_for = |expect: u8, fill: u8, name: &str| {
        let mut script = vec![FsCall::Open(name.to_string())];
        for _ in 0..60 {
            script.push(FsCall::ReadExpect {
                block: 1,
                count: BLOCK_SIZE as u32,
                expect,
            });
        }
        script.push(FsCall::WriteFill {
            block: 2,
            count: BLOCK_SIZE as u32,
            fill,
        });
        script.push(FsCall::ReadExpect {
            block: 2,
            count: BLOCK_SIZE as u32,
            expect: fill,
        });
        script
    };
    let overlay: Rc<RefCell<ShardOverlay>> = Default::default();
    let servers: Vec<_> = services.iter().map(|s| s.server).collect();
    let mut reports = Vec::new();
    let mut script_len = 0;
    for (i, (expect, fill, name)) in [(0xA1, 0x55, &hot_a), (0xB2, 0x66, &hot_b)]
        .into_iter()
        .enumerate()
    {
        let script = script_for(expect, fill, name);
        script_len = script.len() as u64;
        let rep = Rc::new(RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(2 + i),
            "client",
            Box::new(
                ShardedFsClient::with_servers(servers.clone(), script, rep.clone())
                    .with_overlay(overlay.clone()),
            ),
        );
        reports.push(rep);
    }
    let ledger = spawn_rebalancer(
        cl,
        HostId(2),
        RebalancerConfig {
            interval: SimDuration::from_millis(30),
            rounds: 1,
            min_score: 1.0,
            ..RebalancerConfig::default()
        },
        services.iter().map(ShardHandle::from).collect(),
        overlay.clone(),
    );
    HotShards {
        services,
        reports,
        ledger,
        overlay,
        script_len,
        names: vec![hot_a, hot_b],
    }
}

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(4, CpuSpeed::Mc68000At10MHz))
}

/// Crashing the *destination* mid-copy aborts the move cleanly: the
/// file stays at the old owner, the write drain is lifted (the closing
/// writes succeed there), and no client op fails or corrupts.
#[test]
fn destination_crash_mid_copy_aborts_and_file_stays_home() {
    let mut cl = cluster();
    let HotShards {
        services,
        reports,
        ledger,
        overlay,
        script_len,
        ..
    } = hot_shard_setup(&mut cl);
    // Sampling fires at 30 ms; the 4-block copy takes several more —
    // 33 ms lands inside it. (If the copy were somehow already done the
    // crash would instead exercise the post-flip path; the ledger
    // assertions below pin which one actually ran.)
    let sched = FaultSchedule::new().crash_at(SimTime::from_millis(33), HostId(1));
    run_with_faults(&mut cl, sched);

    let led = ledger.borrow();
    assert_eq!(led.completed, 0, "copy must not survive the crash: {led:?}");
    assert!(led.aborted >= 1, "the move must abort cleanly: {led:?}");
    assert_eq!(overlay.borrow().moves(), 0, "ownership never flipped");
    let s0 = services[0].stats.borrow();
    assert_eq!(s0.migrated_out, 0, "{s0:?}");
    for rep in &reports {
        let r = rep.borrow().clone();
        assert!(r.done, "{r:?}");
        assert_eq!(r.errors, 0, "no op may fail on an aborted move: {r:?}");
        assert_eq!(r.integrity_errors, 0, "{r:?}");
        assert_eq!(r.completed, script_len, "every op exactly once: {r:?}");
        assert_eq!(r.stale_owner_forwards, 0, "nothing moved: {r:?}");
    }
}

/// Crashing the *old owner* right after the ownership flip: the moved
/// file lives on at its new shard, and clients recover via the reply's
/// owner stamp or the overlay failover — zero failed ops either way.
#[test]
fn old_owner_crash_after_flip_fails_over_to_new_owner() {
    let mut cl = cluster();
    let HotShards {
        services,
        reports,
        ledger,
        script_len,
        names,
        ..
    } = hot_shard_setup(&mut cl);
    // Drive the sim in 1 ms steps until the commit lands, then kill the
    // old owner immediately — before most stale owner caches have had a
    // chance to self-correct.
    let mut t = SimTime::ZERO;
    while ledger.borrow().completed == 0 {
        t += SimDuration::from_millis(1);
        assert!(
            t <= SimTime::from_millis(300),
            "migration never committed: {:?}",
            ledger.borrow()
        );
        cl.run_until(t);
    }
    cl.crash_host(HostId(0));
    cl.run();

    let led = ledger.borrow();
    assert_eq!(led.completed, 1, "{led:?}");
    let moved = led.moves[0].file;
    let s1 = services[1].stats.borrow();
    assert_eq!(s1.migrated_in, 1, "{s1:?}");
    assert!(
        s1.heat.of(moved).0 > 0,
        "the new owner served the moved file: {s1:?}"
    );
    // Only the *migrated* file outlives its old owner; the one still
    // home on host 0 died with it, like any file on a crashed server.
    let moved_idx = names.iter().position(|n| *n == led.moves[0].name).unwrap();
    let r = reports[moved_idx].borrow().clone();
    assert!(r.done, "{r:?}");
    assert_eq!(r.errors, 0, "no op may fail across the failover: {r:?}");
    assert_eq!(r.integrity_errors, 0, "{r:?}");
    assert_eq!(r.completed, script_len, "every op exactly once: {r:?}");
    // Its client held a stale owner when host 0 died: it recovered
    // through a forward (pre-crash) or a Send-error failover (post).
    assert!(
        r.stale_owner_forwards + r.owner_failovers >= 1,
        "a client recovery path must have fired: {r:?}"
    );
    // The stranded client may fail its remaining ops (its server is
    // gone) but must never corrupt or duplicate anything.
    let stranded = reports[1 - moved_idx].borrow().clone();
    assert_eq!(stranded.integrity_errors, 0, "{stranded:?}");
    assert!(stranded.completed < script_len, "{stranded:?}");
}

/// The same seed and fault schedule replay bit-for-bit: every ledger
/// counter, client report, and the final clock match across two runs.
#[test]
fn migration_chaos_replays_deterministically() {
    let run = || {
        let mut cl = cluster();
        let HotShards {
            services,
            reports,
            ledger,
            overlay,
            ..
        } = hot_shard_setup(&mut cl);
        let sched = FaultSchedule::new()
            .crash_at(SimTime::from_millis(33), HostId(1))
            .restart_at(SimTime::from_millis(120), HostId(1));
        run_with_faults(&mut cl, sched);
        let led = ledger.borrow().clone();
        let forwards = services[0].stats.borrow().moved_forwards;
        let overlay_moves = overlay.borrow().moves();
        let reps: Vec<_> = reports
            .iter()
            .map(|r| {
                let r = r.borrow();
                (
                    r.completed,
                    r.errors,
                    r.stale_owner_forwards,
                    r.write_retries,
                    r.owner_failovers,
                )
            })
            .collect();
        (
            cl.now(),
            led.planned,
            led.completed,
            led.aborted,
            led.rounds,
            overlay_moves,
            forwards,
            reps,
            cl.medium_stats().frames_sent,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "chaos replay must be deterministic");
}
