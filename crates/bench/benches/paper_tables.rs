//! Criterion benches: one group per paper table/figure.
//!
//! Criterion measures the *simulator's* wall-clock throughput while it
//! regenerates each experiment — the reproduced 1983 timings themselves
//! are simulated time and live in the experiment outputs
//! (`cargo run -p v-bench -- all`) and EXPERIMENTS.md. Keeping every
//! table under `cargo bench` ensures the whole harness stays runnable
//! and performance-tracked.

use criterion::{criterion_group, criterion_main, Criterion};

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::SimDuration;
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::load::{LoadClient, LoadServer};
use v_workloads::measure::probe;
use v_workloads::mover::{Grantor, MoveDir, Mover};
use v_workloads::page::{PageClient, PageMode, PageOp, PageServer};
use v_workloads::penalty::measure_penalty;
use v_workloads::seq::{SeqReadClient, SeqReadServer};

fn pair(speed: CpuSpeed) -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(2, speed))
}

fn bench_table_4_1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_4_1_network_penalty");
    g.sample_size(20);
    g.bench_function("penalty_1024B_300_rounds", |b| {
        b.iter(|| {
            let mut cl = pair(CpuSpeed::Mc68000At8MHz);
            let (ms, _) = measure_penalty(&mut cl, 1024, 300);
            assert!(ms > 0.0);
        })
    });
    g.finish();
}

fn bench_table_5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_5_kernel_ops");
    g.sample_size(20);
    g.bench_function("remote_srr_1000_exchanges", |b| {
        b.iter(|| {
            let mut cl = pair(CpuSpeed::Mc68000At8MHz);
            let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
            let rep = probe(Default::default());
            cl.spawn(
                HostId(0),
                "ping",
                Box::new(Pinger::new(server, 1000, rep.clone())),
            );
            cl.run();
            assert!(rep.borrow().clean());
        })
    });
    g.bench_function("remote_moveto_1024B_300_ops", |b| {
        b.iter(|| {
            let mut cl = pair(CpuSpeed::Mc68000At8MHz);
            let rep = probe(Default::default());
            let mover = cl.spawn(
                HostId(0),
                "mover",
                Box::new(Mover::new(300, 1024, MoveDir::To, 0x5A, rep.clone())),
            );
            cl.spawn(
                HostId(1),
                "grantor",
                Box::new(Grantor {
                    mover,
                    size: 1024,
                    pattern: 0x5A,
                    dir: MoveDir::To,
                    report: rep.clone(),
                }),
            );
            cl.run();
            assert!(rep.borrow().clean());
        })
    });
    g.finish();
}

fn bench_table_6_1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_6_1_page_access");
    g.sample_size(20);
    g.bench_function("remote_page_read_500_ops", |b| {
        b.iter(|| {
            let mut cl = pair(CpuSpeed::Mc68000At10MHz);
            let rep = probe(Default::default());
            let server = cl.spawn(
                HostId(1),
                "pageserver",
                Box::new(PageServer::new(PageMode::Segment, 512, 0x7E, rep.clone())),
            );
            cl.spawn(
                HostId(0),
                "client",
                Box::new(PageClient::new(
                    server,
                    PageOp::Read,
                    512,
                    500,
                    0x7E,
                    rep.clone(),
                )),
            );
            cl.run();
            assert!(rep.borrow().clean());
        })
    });
    g.finish();
}

fn bench_table_6_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_6_2_sequential");
    g.sample_size(20);
    g.bench_function("seq_read_200_pages_disk15ms", |b| {
        b.iter(|| {
            let mut cl = pair(CpuSpeed::Mc68000At10MHz);
            let rep = probe(Default::default());
            let server = cl.spawn(
                HostId(1),
                "seq",
                Box::new(SeqReadServer::new(
                    512,
                    SimDuration::from_millis(15),
                    0x22,
                    rep.clone(),
                )),
            );
            cl.spawn(
                HostId(0),
                "reader",
                Box::new(SeqReadClient::new(
                    server,
                    512,
                    200,
                    SimDuration::ZERO,
                    rep.clone(),
                )),
            );
            cl.run();
            assert!(rep.borrow().clean());
        })
    });
    g.finish();
}

fn bench_table_6_3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_6_3_program_loading");
    g.sample_size(10);
    g.bench_function("remote_64KB_load_16KB_units", |b| {
        b.iter(|| {
            let mut cl = pair(CpuSpeed::Mc68000At8MHz);
            let rep = probe(Default::default());
            let server = cl.spawn(
                HostId(1),
                "loadserver",
                Box::new(LoadServer::new(65536, 16384, 0x42, rep.clone())),
            );
            cl.spawn(
                HostId(0),
                "loadclient",
                Box::new(LoadClient::new(server, 65536, 5, 0x42, rep.clone())),
            );
            cl.run();
            assert!(rep.borrow().clean());
        })
    });
    g.finish();
}

fn bench_section_5_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("section_5_4_multipair");
    g.sample_size(10);
    g.bench_function("two_pairs_500_exchanges_bug_mode", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::three_mb().with_hosts(4, CpuSpeed::Mc68000At8MHz);
            cfg.collision_bug = Some(v_net::CollisionBug::PAPER_3MB);
            let mut cl = Cluster::new(cfg);
            let res =
                v_workloads::multipair::run_pairs(&mut cl, 2, 500, SimDuration::from_millis(1));
            assert!(res.mean_per_op_ms > 0.0);
        })
    });
    g.finish();
}

fn bench_section_7(c: &mut Criterion) {
    let mut g = c.benchmark_group("section_7_fileserver");
    g.sample_size(10);
    g.bench_function("five_workstations_mixed_load", |b| {
        b.iter(|| {
            let cfg = ClusterConfig::three_mb().with_hosts(6, CpuSpeed::Mc68000At10MHz);
            let mut cl = Cluster::new(cfg);
            let rep = probe(Default::default());
            let server = cl.spawn(
                HostId(0),
                "server",
                Box::new(v_workloads::mixed::CapacityServer::new(
                    SimDuration::from_millis_f64(3.5),
                    rep,
                )),
            );
            for i in 0..5 {
                cl.spawn(
                    HostId(i + 1),
                    "ws",
                    Box::new(v_workloads::mixed::MixedClient::new(
                        server,
                        30,
                        SimDuration::from_millis(300),
                        i as u64 + 1,
                        probe(Default::default()),
                    )),
                );
            }
            cl.run();
        })
    });
    g.finish();
}

fn bench_section_8(c: &mut Criterion) {
    let mut g = c.benchmark_group("section_8_ten_mb");
    g.sample_size(20);
    g.bench_function("ten_mb_remote_srr_1000", |b| {
        b.iter(|| {
            let mut cl =
                Cluster::new(ClusterConfig::ten_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz));
            let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
            let rep = probe(Default::default());
            cl.spawn(
                HostId(0),
                "ping",
                Box::new(Pinger::new(server, 1000, rep.clone())),
            );
            cl.run();
            assert!(rep.borrow().clean());
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table_4_1,
    bench_table_5,
    bench_table_6_1,
    bench_table_6_2,
    bench_table_6_3,
    bench_section_5_4,
    bench_section_7,
    bench_section_8
);
criterion_main!(benches);
