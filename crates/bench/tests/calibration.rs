//! Calibration pins: every reproduced table entry must stay within
//! tolerance of the paper's published value. These tolerances encode the
//! fidelity actually achieved (documented in EXPERIMENTS.md); tightening
//! the cost model should never loosen them.

use v_bench::experiments as exp;
use v_bench::report::Comparison;
use v_kernel::CpuSpeed;

/// Looks up a metric, failing the test with a clear message when an
/// experiment renamed it out from under the pins.
fn metric_of(c: &Comparison, name: &str) -> f64 {
    c.get(name)
        .unwrap_or_else(|| panic!("{}: no row named {name:?} — renamed metric?", c.id))
}

/// Asserts a comparison row is within `tol` (fractional) of the paper.
fn pin(c: &Comparison, metric: &str, paper: f64, tol: f64) {
    let ours = metric_of(c, metric);
    let dev = (ours - paper).abs() / paper.abs();
    assert!(
        dev <= tol,
        "{} / {metric}: ours {ours:.3} vs paper {paper:.3} ({:+.1}% > ±{:.0}%)",
        c.id,
        (ours - paper) / paper * 100.0,
        tol * 100.0
    );
}

#[test]
fn table_4_1_network_penalty() {
    let c = exp::network_penalty();
    for (bytes, p8, p10) in v_bench::paper::TABLE_4_1 {
        pin(&c, &format!("{bytes} bytes, 8 MHz"), p8, 0.05);
        pin(&c, &format!("{bytes} bytes, 10 MHz"), p10, 0.06);
    }
}

#[test]
fn table_5_1_kernel_performance_8mhz() {
    let c = exp::kernel_performance(CpuSpeed::Mc68000At8MHz);
    pin(&c, "GetTime local", 0.07, 0.02);
    pin(&c, "Send-Receive-Reply local", 1.00, 0.03);
    pin(&c, "Send-Receive-Reply remote", 3.18, 0.05);
    pin(&c, "Send-Receive-Reply penalty", 1.60, 0.03);
    pin(&c, "Send-Receive-Reply client CPU", 1.79, 0.10);
    pin(&c, "Send-Receive-Reply server CPU", 2.30, 0.10);
    pin(&c, "MoveTo 1024B local", 1.26, 0.05);
    pin(&c, "MoveTo 1024B remote", 9.05, 0.10);
    pin(&c, "MoveFrom 1024B local", 1.26, 0.05);
    pin(&c, "MoveFrom 1024B remote", 9.03, 0.10);
    pin(&c, "MoveTo 1024B penalty", 8.15, 0.03);
    // CPU attribution for transfers deviates further (the paper does not
    // document its measurement loop); keep a wide honest bound.
    pin(&c, "MoveTo 1024B client CPU", 3.59, 0.25);
    pin(&c, "MoveTo 1024B server CPU", 5.87, 0.45);
}

#[test]
fn table_5_2_kernel_performance_10mhz() {
    let c = exp::kernel_performance(CpuSpeed::Mc68000At10MHz);
    pin(&c, "GetTime local", 0.06, 0.02);
    pin(&c, "Send-Receive-Reply local", 0.77, 0.03);
    pin(&c, "Send-Receive-Reply remote", 2.54, 0.05);
    pin(&c, "Send-Receive-Reply client CPU", 1.44, 0.10);
    pin(&c, "Send-Receive-Reply server CPU", 1.79, 0.10);
    pin(&c, "MoveTo 1024B local", 0.95, 0.05);
    pin(&c, "MoveTo 1024B remote", 8.00, 0.10);
    pin(&c, "MoveFrom 1024B remote", 8.00, 0.10);
}

#[test]
fn table_6_1_page_access() {
    let c = exp::page_access();
    pin(&c, "page read local", 1.31, 0.05);
    pin(&c, "page read remote", 5.56, 0.06);
    pin(&c, "page write remote", 5.60, 0.06);
    pin(&c, "page read client CPU", 2.50, 0.20);
    pin(&c, "page read server CPU", 3.28, 0.25);
    pin(&c, "Thoth-mode page write (MoveFrom)", 8.10, 0.10);
}

#[test]
fn table_6_2_sequential_access() {
    let c = exp::sequential_access();
    for (disk, paper) in v_bench::paper::TABLE_6_2 {
        pin(&c, &format!("disk latency {disk} ms"), paper, 0.08);
    }
}

#[test]
fn table_6_3_program_loading() {
    let c = exp::program_loading();
    for (unit, local, remote, _, _) in v_bench::paper::TABLE_6_3 {
        let kb = unit / 1024;
        let tol_local = if unit == 1024 { 0.16 } else { 0.05 };
        pin(&c, &format!("{kb} KB units, local"), local, tol_local);
        pin(&c, &format!("{kb} KB units, remote"), remote, 0.11);
    }
    pin(&c, "data rate, 64 KB units", 192.0, 0.10);
}

#[test]
fn section_5_4_multi_process_traffic() {
    let c = exp::multi_process_traffic();
    pin(&c, "one pair exchange time", 3.18, 0.05);
    pin(&c, "two pairs exchange time (buggy interface)", 3.4, 0.06);
    pin(&c, "server exchange ceiling (10 MHz)", 558.0, 0.06);
}

#[test]
fn section_8_ten_mb_ethernet() {
    let c = exp::ten_mb_ethernet();
    pin(&c, "remote exchange", 2.71, 0.12);
    pin(&c, "page read", 5.72, 0.06);
    pin(&c, "64 KB load, 16 KB units", 255.0, 0.12);
}

#[test]
fn section_3_ablations() {
    let ip = exp::ip_encapsulation();
    pin(&ip, "IP overhead", 20.0, 0.35);
    let relay = exp::netserver_relay();
    pin(&relay, "slowdown factor", 4.0, 0.15);
}

#[test]
fn section_6_comparators() {
    let wfs = exp::wfs_comparison();
    // V IPC must sit within ~2 ms of the specialized protocol (which
    // legitimately runs leaner 12-byte headers, so it even undercuts the
    // 64/576-byte penalty figure slightly).
    let gap = metric_of(&wfs, "V IPC overhead vs specialized");
    assert!((0.0..2.1).contains(&gap), "V IPC vs WFS gap {gap:.2} ms");

    let streaming = exp::streaming_comparison();
    for disk in [10u64, 15, 20] {
        let gain = metric_of(&streaming, &format!("streaming gain, disk {disk} ms"));
        assert!(
            (0.0..15.0).contains(&gain),
            "disk {disk}: streaming gain {gain:.1}% outside the paper's bound"
        );
    }
}

#[test]
fn section_7_capacity() {
    let c = exp::file_server_capacity();
    pin(&c, "page request CPU (kernel + fs)", 7.0, 0.15);
    // The mix and ceiling inherit the known transfer server-CPU gap
    // (see EXPERIMENTS.md); bounds are wide but still catch regressions.
    pin(&c, "90/10 mix average CPU", 36.0, 0.40);
    pin(&c, "requests/second (estimate)", 28.0, 0.60);
    // Simulated capacity: 10 workstations tolerable, 30 degrading hard.
    // Absolute latencies include head-of-line blocking behind 64 KB
    // loads, which the paper's CPU-budget estimate ignores entirely —
    // a reproduction finding recorded in EXPERIMENTS.md.
    let page10 = metric_of(&c, "10 workstations: page response");
    assert!(page10 < 150.0, "10-ws page response {page10:.1} ms");
    let knee = metric_of(&c, "degradation knee (30 ws vs 10 ws response)");
    assert!(knee > 3.0, "no saturation knee: {knee:.1}x");
}

#[test]
fn wan_topologies_show_hop_latency_and_loss_recovery() {
    let c = exp::wan_with_rounds(100);
    assert!(metric_of(&c, "added gateway hop latency") > 0.0);
    assert!(metric_of(&c, "page read added hop latency") > 0.0);
    // Distance dominates: a 30 ms line makes every exchange ≥ one RTT.
    assert!(metric_of(&c, "exchange over clean T1 WAN (30 ms one way)") > 60.0);
    assert!(metric_of(&c, "loss-driven retransmissions") > 0.0);
    assert!(
        metric_of(&c, "exchange over T1 WAN, 5% loss")
            > metric_of(&c, "exchange over clean T1 WAN (30 ms one way)"),
        "loss must cost retransmission timeouts"
    );
    // Frame coalescing is opt-in: with the flag off, the mesh must
    // reproduce the plain internetwork's bulk numbers to the bit.
    let perturbation = metric_of(&c, "coalescing-off perturbation");
    assert_eq!(
        perturbation, 0.0,
        "the coalescing-capable gateway perturbed the baseline by {perturbation} ms"
    );
    // With the flag on, queued same-egress chunks must share forwarding
    // charges — visibly (counter) and profitably (elapsed).
    assert!(metric_of(&c, "frames coalesced, off") == 0.0);
    assert!(metric_of(&c, "frames coalesced, on") > 0.0);
    let speedup = metric_of(&c, "coalescing speedup");
    assert!(
        speedup > 1.0,
        "coalescing must shorten the bulk transfer: {speedup:.3}x"
    );
}

#[test]
fn cachemix_hits_locally_pays_consistency_and_keeps_off_bit_identical() {
    let c = exp::cachemix_with_rounds(256);
    // Off IS the pre-cache client — not close to it. Exact equality.
    let perturbation = metric_of(&c, "cache-off perturbation");
    assert_eq!(
        perturbation, 0.0,
        "CacheMode::Off perturbed the pre-cache client by {perturbation} ms"
    );
    // The acceptance bar: a read-mostly working set that fits must hit
    // >= 90% and cut per-read latency by >= 2x against the uncached
    // client.
    let hit_rate = metric_of(&c, "ws=8 in 64-block cache: hit rate");
    assert!(
        hit_rate >= 90.0,
        "hit rate {hit_rate:.1}% below the 90% bar"
    );
    let speedup = metric_of(&c, "ws=8 in 64-block cache: speedup over uncached");
    assert!(speedup >= 2.0, "speedup {speedup:.2}x below the 2x bar");
    // A working set the cache cannot hold must not hit.
    assert!(metric_of(&c, "ws=128 in 16-block cache: hit rate") < 10.0);
    // Sharing keeps the reader honest: even against a heavy writer the
    // caching reader must still land hits under both schemes, and the
    // consistency machinery must actually run.
    assert!(metric_of(&c, "shared 1:8: reader hit rate, write-invalidate") > 50.0);
    assert!(metric_of(&c, "shared 1:8: reader hit rate, leases") > 50.0);
    assert!(metric_of(&c, "shared 1:8: consistency actions, write-invalidate") > 0.0);
    // Invalidation storms price the schemes apart: write-invalidate
    // pays one callback per warm holder (so the write slows with N),
    // leases pay one bounded expiry wait however many holders exist.
    let wi4 = metric_of(&c, "storm write vs 4 warm readers, write-invalidate");
    let wi16 = metric_of(&c, "storm write vs 16 warm readers, write-invalidate");
    assert!(
        wi16 > wi4,
        "write-invalidate storm must scale with holders: {wi4:.2} vs {wi16:.2} ms"
    );
    assert!(metric_of(&c, "storm invalidations delivered (N=16)") == 16.0);
    assert!(metric_of(&c, "storm lease waits (N=16)") == 1.0);
    let l4 = metric_of(&c, "storm write vs 4 warm readers, leases");
    let l16 = metric_of(&c, "storm write vs 16 warm readers, leases");
    assert!(
        (l16 - l4).abs() < 0.2 * l16,
        "lease storm must be ~independent of N: {l4:.0} vs {l16:.0} ms"
    );
}

#[test]
fn shard_placement_orders_by_hops_and_preserves_the_baseline() {
    let c = exp::shard_with_rounds(100);
    let same = metric_of(&c, "page read 512 B, same segment (mesh)");
    let one = metric_of(&c, "page read 512 B, 1 hop");
    let two = metric_of(&c, "page read 512 B, 2 hops");
    assert!(
        same < one && one < two,
        "hop latency must be strictly ordered: {same:.3} / {one:.3} / {two:.3} ms"
    );
    // Bit-identical: standing up the mesh around the segment must not
    // move the paper's single-segment number by even one event. Exact
    // float equality is the assertion — any perturbation is a bug.
    let perturbation = metric_of(&c, "mesh perturbation of baseline");
    assert_eq!(
        perturbation, 0.0,
        "mesh fabric perturbed the single-segment baseline by {perturbation} ms"
    );
    // Identical segments and per-hop costs: the two hop increments match.
    let hop1 = metric_of(&c, "per-hop cost, first hop");
    let hop2 = metric_of(&c, "per-hop cost, second hop");
    assert!((hop1 - hop2).abs() < 1e-9, "hops differ: {hop1} vs {hop2}");

    // Server locality dominates: partitioned placement beats hauling
    // every page across the mesh, and keeps the gateways idle.
    let central = metric_of(&c, "centralized placement: page read");
    let part = metric_of(&c, "partitioned placement: page read");
    assert!(
        part < central,
        "partitioned {part:.3} ≥ centralized {central:.3}"
    );
    assert_eq!(metric_of(&c, "partitioned gateway frames forwarded"), 0.0);
    assert!(metric_of(&c, "centralized gateway frames forwarded") > 0.0);
}

#[test]
fn rebalancing_spreads_heat_and_keeps_the_off_arm_bit_identical() {
    let c = exp::rebalance_with_rounds(100);
    // Bit-identical: migration-capable services plus overlay-carrying
    // clients with the rebalancer never started must reproduce the
    // plain sharded deployment's timeline to the event. Exact float
    // equality — any perturbation is a bug.
    let perturbation = metric_of(&c, "rebalancer-off perturbation");
    assert_eq!(
        perturbation, 0.0,
        "the idle migration stack perturbed the sharded baseline by {perturbation} ms"
    );
    // The acceptance bar: walking hot files off the loaded shard must
    // lift served load by >= 1.3x over the static placement.
    let gain = metric_of(&c, "rebalancing served-load gain");
    assert!(
        gain >= 1.3,
        "served-load gain {gain:.2}x below the 1.3x bar"
    );
    // The policy actually ran: files moved, and the shards settled
    // inside the band before the round budget ran out.
    let moved = metric_of(&c, "files migrated");
    assert!(
        (1.0..=4.0).contains(&moved),
        "expected 1–4 live migrations, saw {moved}"
    );
    assert!(
        metric_of(&c, "rounds to convergence") >= 1.0,
        "the rebalancer never converged inside its round budget"
    );
    // Per-arm utilization converges: the static arm pins one disk and
    // idles three, the rebalanced arm at most halves that spread.
    let spread_static = metric_of(&c, "disk utilization spread, static");
    let spread_reb = metric_of(&c, "disk utilization spread, rebalanced");
    assert!(
        spread_reb < spread_static / 2.0,
        "utilization spread must at least halve: {spread_static:.1} -> {spread_reb:.1} pp"
    );
    // Exactly-once accounting across the moves (the experiment already
    // asserts zero failed/duplicated/corrupted ops per client): every
    // server-side forward of a stale request is matched by exactly one
    // client-side owner correction.
    let stale = metric_of(&c, "stale-owner corrections (clients)");
    let forwarded = metric_of(&c, "forwarded stale requests (servers)");
    assert!(stale >= 1.0, "no client ever chased a moved file");
    assert_eq!(
        stale, forwarded,
        "client corrections must reconcile with server forwards to the op"
    );
}

#[test]
fn failover_bounds_the_spike_and_recovers_steady_latency() {
    let c = exp::failover_with_rounds(60);
    let control = metric_of(&c, "steady read, no-fault control");
    let before = metric_of(&c, "read latency before crash");
    let after = metric_of(&c, "read latency after failover");
    let spike = metric_of(&c, "failover spike (worst read)");
    // Reads outside the failover window track the no-fault control.
    assert!(
        (before - control).abs() / control < 0.25,
        "pre-crash reads drifted from control: {before:.3} vs {control:.3} ms"
    );
    assert!(
        (after - control).abs() / control < 0.25,
        "post-failover reads drifted from control: {after:.3} vs {control:.3} ms"
    );
    // The spike is the kernel's failure detection, bounded by the
    // retransmission budget: 13 x 200 ms ladder plus one read. It must
    // be large (the budget dominates) but bounded (no hang, no pile-up).
    assert!(
        spike > 2000.0 && spike < 3500.0,
        "spike outside the detection-budget window: {spike:.1} ms"
    );
    assert_eq!(metric_of(&c, "failovers"), 1.0, "one switch, then stable");
    assert_eq!(metric_of(&c, "reads completed"), 61.0, "open + 60 reads");
}

#[test]
fn pipelining_beats_sequential_under_fan_in_and_keeps_workers_1_bit_identical() {
    let c = exp::pipeline_with_rounds(20);
    // Bit-identical: the team refactor must not move the paper-shaped
    // sequential server (workers = 1) by even one event relative to a
    // directly spawned pre-team `FileServer`. Exact float equality.
    let perturbation = metric_of(&c, "workers=1 perturbation of direct spawn");
    assert_eq!(
        perturbation, 0.0,
        "team builder perturbed the sequential server by {perturbation} ms"
    );
    // Pipelining must win strictly wherever there is concurrency to
    // overlap (≥ 2 clients); with a single client the forward/notify
    // overhead makes it honestly a touch slower.
    for clients in [2u32, 4, 8] {
        let seq = metric_of(&c, &format!("burst of {clients}: sequential per read"));
        let pipe = metric_of(
            &c,
            &format!("burst of {clients}: pipelined per read (4 workers)"),
        );
        assert!(
            pipe < seq,
            "burst of {clients}: pipelined {pipe:.2} ms must beat sequential {seq:.2} ms"
        );
    }
    // The disk is the shared queueing center: pipelining drives it
    // harder (higher utilization, real queueing), the sequential server
    // never queues it at all.
    let seq_util = metric_of(&c, "burst of 8: sequential disk utilization");
    let pipe_util = metric_of(&c, "burst of 8: pipelined disk utilization");
    assert!(
        pipe_util > seq_util,
        "pipelined disk utilization {pipe_util:.1}% must exceed sequential {seq_util:.1}%"
    );
    assert!(metric_of(&c, "burst of 8: pipelined max disk queue depth") > 1.0);
    assert_eq!(
        metric_of(&c, "burst of 8: sequential max disk queue depth"),
        1.0
    );
    // Throughput moves toward the disk-bound ceiling.
    assert!(
        metric_of(&c, "burst of 8: pipelined served load")
            > metric_of(&c, "burst of 8: sequential served load")
    );
}

#[test]
fn protocol_ablations_quantify_their_mechanisms() {
    let c = exp::protocol_ablations();
    assert!(
        metric_of(&c, "page write, appended segments off")
            > metric_of(&c, "page write, appended segments on"),
        "appended segments must save a transfer round"
    );
    assert!(metric_of(&c, "cached replies retransmitted") > 0.0);
    assert!(metric_of(&c, "re-deliveries without the cache") > 0.0);
}

#[test]
fn datapath_scales_with_arms_and_keeps_both_ablations_bit_identical() {
    let c = exp::datapath_with_rounds(40);
    // Bit-identical ablation arms. `arms = 1` must be the pre-striping
    // disk — the default-config burst and the explicit single-arm burst
    // may not differ by one event. Exact float equality.
    let striping = metric_of(&c, "arms=1 perturbation of the single-arm burst");
    assert_eq!(
        striping, 0.0,
        "a 1-arm striped build perturbed the single-arm burst by {striping} ms"
    );
    // Likewise the fast path must be invisible to any exchange that
    // touches the wire: same remote timeline with the toggle on or off.
    let remote = metric_of(&c, "fastpath perturbation of the remote pair");
    assert_eq!(
        remote, 0.0,
        "local_fastpath perturbed a remote exchange by {remote} ms"
    );
    // Striping caps the queueing centre: with 4 workers feeding it, a
    // 4-arm unit must serve the same burst at >= 1.5x the single-arm
    // throughput (the acceptance bar for this experiment).
    let gain = metric_of(&c, "arms=4 throughput gain over arms=1");
    assert!(
        gain >= 1.5,
        "arms=4 throughput gain {gain:.2}x fell below the 1.5x bar"
    );
    // Each additional arm must also shorten the per-read latency.
    let one = metric_of(&c, "burst of 8, arms=1: per read");
    let two = metric_of(&c, "burst of 8, arms=2: per read");
    let four = metric_of(&c, "burst of 8, arms=4: per read");
    assert!(
        four < two && two < one,
        "per read must fall with arm count: {one:.2} / {two:.2} / {four:.2} ms"
    );
    // The zero-copy hand-off must strictly beat the copying local path
    // in both transfer styles, and never fire on the remote pair.
    let seg_copy = metric_of(&c, "co-located page read, copy path");
    let seg_fast = metric_of(&c, "co-located page read, fast path");
    assert!(
        seg_fast < seg_copy,
        "fast path {seg_fast:.3} ms must strictly beat the copy path {seg_copy:.3} ms"
    );
    let mv_copy = metric_of(&c, "co-located Thoth (MoveTo) read, copy path");
    let mv_fast = metric_of(&c, "co-located Thoth (MoveTo) read, fast path");
    assert!(
        mv_fast < mv_copy,
        "Thoth fast path {mv_fast:.3} ms must strictly beat the copy path {mv_copy:.3} ms"
    );
    assert!(metric_of(&c, "fast-path hand-offs per read") > 0.0);
    assert!(metric_of(&c, "copy bytes saved per read") >= 512.0);
}
