//! §7: file-server capacity — the paper's processor-budget estimate plus
//! an actual multi-workstation simulation.

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::SimDuration;
use v_workloads::measure::probe;
use v_workloads::mixed::{CapacityServer, MixStats, MixedClient};

use crate::paper;
use crate::report::Comparison;

use super::table_6_1::measure_page;
use super::table_6_3::measure_load;

/// File-system processing per request the paper takes from LOCUS.
const FS_CPU: f64 = 3.5;

/// Runs `k` workstations with `think` between requests against one
/// server; returns (requests/s, mean page ms, server utilization).
fn simulate_capacity(k: usize, requests_per_ws: u64, think: SimDuration) -> (f64, f64, f64) {
    let cfg = ClusterConfig::three_mb().with_hosts(k + 1, CpuSpeed::Mc68000At10MHz);
    let mut cl = Cluster::new(cfg);
    let rep = probe(Default::default());
    let server = cl.spawn(
        HostId(0),
        "file-server",
        Box::new(CapacityServer::new(
            SimDuration::from_millis_f64(FS_CPU),
            rep.clone(),
        )),
    );
    let stats: Vec<_> = (0..k)
        .map(|i| {
            let st = probe(MixStats::default());
            cl.spawn(
                HostId(i + 1),
                "workstation",
                Box::new(MixedClient::new(
                    server,
                    requests_per_ws,
                    think,
                    (i + 1) as u64,
                    st.clone(),
                )),
            );
            st
        })
        .collect();
    let t0 = cl.now();
    cl.run();
    let elapsed_s = cl.now().since(t0).as_secs_f64();
    assert_eq!(rep.borrow().failures, 0);
    let total: u64 = stats.iter().map(|s| s.borrow().requests()).sum();
    let page_ms = stats.iter().map(|s| s.borrow().page_ms()).sum::<f64>() / k as f64;
    let util = cl.cpu_utilization(HostId(0));
    (total as f64 / elapsed_s, page_ms, util)
}

/// Reproduces the §7 capacity analysis.
pub fn file_server_capacity() -> Comparison {
    let mut c = Comparison::new("Sec 7", "file server capacity (processor budget)");

    // The paper's estimate, recomputed from *our measured* components.
    let page = measure_page(
        CpuSpeed::Mc68000At10MHz,
        v_workloads::page::PageOp::Read,
        v_workloads::page::PageMode::Segment,
        true,
    );
    let page_cpu = page.server_cpu_ms + FS_CPU;
    c.push(
        "page request CPU (kernel + fs)",
        paper::FS_PAGE_REQUEST_CPU_MS,
        page_cpu,
        "ms",
    );

    // The paper's load figure comes from the 8 MHz Table 6-3 plus
    // per-4KB-block file-system work; mirror that arithmetic.
    let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
    let load = measure_load(cfg, 16384, true);
    let load_cpu = load.server_cpu_ms + FS_CPU * (65536.0 / 4096.0);
    c.push(
        "64 KB load CPU (kernel + fs)",
        paper::FS_PROGRAM_LOAD_CPU_MS,
        load_cpu,
        "ms",
    );

    let mix_cpu = 0.9 * page_cpu + 0.1 * load_cpu;
    c.push(
        "90/10 mix average CPU",
        paper::FS_MIX_AVG_CPU_MS,
        mix_cpu,
        "ms",
    );
    c.push(
        "requests/second (estimate)",
        paper::FS_REQUESTS_PER_SEC,
        1000.0 / mix_cpu,
        "req/s",
    );

    // The simulation the authors could not run: actual workstations.
    // Each thinks ~600 ms between requests (≈ 1.5 req/s offered), so 10
    // stations sit comfortably under the ~28 req/s ceiling and 30 push
    // through it — the paper's "10 satisfactory / 30 excessive" claim.
    let (rps10, page10, util10) = simulate_capacity(10, 60, SimDuration::from_millis(600));
    c.push_ours("10 workstations: served load", rps10, "req/s");
    c.push_ours("10 workstations: page response", page10, "ms");
    c.push_ours("10 workstations: server utilization", util10 * 100.0, "%");

    let (rps30, page30, util30) = simulate_capacity(30, 40, SimDuration::from_millis(600));
    c.push_ours("30 workstations: served load", rps30, "req/s");
    c.push_ours("30 workstations: page response", page30, "ms");
    c.push_ours("30 workstations: server utilization", util30 * 100.0, "%");
    c.push(
        "degradation knee (30 ws vs 10 ws response)",
        3.0, // "excessive delays": at least severalfold
        page30 / page10,
        "x",
    );

    c.note("fs processing per request: 3.5 ms (the paper's LOCUS-derived figure)");
    c.note("workstations think 600 ms between requests; 90% page reads, 10% 64 KB loads");
    c.note("paper: ~10 workstations per server satisfactory, 30+ excessive; the simulated");
    c.note("knee also shows head-of-line blocking behind 64 KB loads, which the paper's");
    c.note("pure CPU-budget estimate ignores");
    c
}
