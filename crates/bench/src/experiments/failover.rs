//! Read availability across a root-replica crash.
//!
//! The paper's diskless workstations depend on **one** file server; §6
//! measures its latency but never its loss. This experiment measures
//! what the paper could not: a client reading the replicated read-only
//! root ([`v_fs::replica`]) while one replica's host crashes under it.
//!
//! Two arms, identical cluster and script:
//!
//! * **control** — no fault; gives the steady per-read latency that the
//!   paper-column comparator rows use (there is no published value for
//!   failover, so the reproduction is compared against its own
//!   no-fault regime: before-crash and after-failover reads must match
//!   the control within the CI deviation gate);
//! * **fault** — replica 0's host is crashed about a third of the way
//!   through the script. Exactly one read absorbs the kernel's failure
//!   detection (the retransmission budget: `max_retries` × 200 ms
//!   before `HostDown` surfaces, ≈ 2.6 s at the defaults), the client
//!   fails over, and every later read is served by a surviving replica
//!   at normal latency.
//!
//! The interesting rows are the **failover spike** (the one slow read —
//! bounded by the detection budget, not by disk or wire) and the
//! before/after means showing the spike is confined to that single
//! operation. See `docs/BENCHMARKS.md` for how the emitted
//! `BENCH_failover.json` is gated in CI.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::FsCall;
use v_fs::replica::{spawn_replica_group, ReplicaReport, ReplicatedFsClient};
use v_fs::{BlockStore, DiskModel, FileServerConfig, BLOCK_SIZE};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId, Pid};
use v_sim::{SimDuration, SimTime};

use crate::report::Comparison;

use super::N_PAGES;

const REPLICAS: usize = 3;
const FILL: u8 = 0x7E;

/// Builds the 3-replica + 1-client cluster and spawns the group,
/// returning the cluster, replica pids and the client's report slot.
fn replicated_setup(reads: u64) -> (Cluster, Rc<RefCell<ReplicaReport>>) {
    let cfg = ClusterConfig::three_mb().with_hosts(REPLICAS + 1, CpuSpeed::Mc68000At10MHz);
    let mut cl = Cluster::new(cfg);
    let mut store = BlockStore::new();
    store
        .create_with("vmunix", &vec![FILL; 16 * BLOCK_SIZE])
        .expect("fresh store");
    let fs_cfg = FileServerConfig {
        disk: DiskModel::fixed(SimDuration::from_millis(2)),
        ..FileServerConfig::default()
    };
    let hosts: Vec<HostId> = (0..REPLICAS).map(HostId).collect();
    let pids: Vec<Pid> = spawn_replica_group(&mut cl, &hosts, &fs_cfg, &store);
    cl.run(); // replicas blocked in Receive

    let mut script = vec![FsCall::Open("vmunix".into())];
    for j in 0..reads {
        script.push(FsCall::ReadExpect {
            block: (j % 16) as u32,
            count: BLOCK_SIZE as u32,
            expect: FILL,
        });
    }
    let rep = Rc::new(RefCell::new(ReplicaReport::default()));
    cl.spawn(
        HostId(REPLICAS),
        "failover-client",
        Box::new(ReplicatedFsClient::new(pids, script, rep.clone())),
    );
    (cl, rep)
}

/// Runs one arm; `crash_at_ms` crashes replica 0's host mid-script
/// (`None` = control). Returns the client's report and the crash time.
fn run_arm(reads: u64, crash_at_ms: Option<f64>) -> ReplicaReport {
    let (mut cl, rep) = replicated_setup(reads);
    if let Some(at) = crash_at_ms {
        cl.run_until(SimTime::from_micros((at * 1000.0) as u64));
        cl.crash_host(HostId(0));
    }
    cl.run();
    let r = rep.borrow().clone();
    assert!(
        r.fs.done && !r.gave_up && r.fs.integrity_errors == 0,
        "failover arm failed: {r:?}"
    );
    r
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The failover availability table with the full round count.
pub fn failover() -> Comparison {
    failover_with_rounds(N_PAGES.min(300))
}

/// [`failover`] with a configurable read count; the CI smoke job runs a
/// handful of reads to keep the pipeline check cheap.
pub fn failover_with_rounds(reads: u64) -> Comparison {
    assert!(reads >= 10, "need enough reads to straddle the crash");
    let mut c = Comparison::new(
        "Failover",
        "read availability across a root-replica crash, 3 read-only replicas, 10 MHz",
    );

    // --- control arm: steady-state latency, no fault -------------------
    let control = run_arm(reads, None);
    let control_per_read = mean(
        &control
            .op_ms
            .iter()
            .skip(1) // the open
            .map(|&(_, lat)| lat)
            .collect::<Vec<_>>(),
    );

    // --- fault arm: crash replica 0 a third of the way in --------------
    // Scheduled off the control's own timeline so the crash always lands
    // mid-script whatever the round count.
    let crash_at_ms = control.op_ms[control.op_ms.len() / 3].0;
    let fault = run_arm(reads, Some(crash_at_ms));

    // Classify the fault arm's reads around the spike: the single
    // slowest read is the one that absorbed the failure detection.
    let reads_only: Vec<(f64, f64)> = fault.op_ms.iter().skip(1).copied().collect();
    let spike_idx = reads_only
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("at least one read");
    let spike = reads_only[spike_idx].1;
    let before = mean(
        &reads_only[..spike_idx]
            .iter()
            .map(|&(_, lat)| lat)
            .collect::<Vec<_>>(),
    );
    let after = mean(
        &reads_only[spike_idx + 1..]
            .iter()
            .map(|&(_, lat)| lat)
            .collect::<Vec<_>>(),
    );

    // The comparator column is the reproduction's own no-fault control:
    // reads outside the failover window must not drift from it, and the
    // CI deviation gate (--check) holds these rows to that.
    c.push("read latency before crash", control_per_read, before, "ms");
    c.push("read latency after failover", control_per_read, after, "ms");
    c.push_ours("steady read, no-fault control", control_per_read, "ms");
    c.push_ours("failover spike (worst read)", spike, "ms");
    c.push_ours("reads absorbing the spike", 1.0, "reads");
    c.push_ours("failovers", fault.failovers as f64, "switches");
    c.push_ours("reads completed", fault.fs.completed as f64, "ops");
    c.push_ours("crash injected at", crash_at_ms, "ms");

    c.note("3 read-only replicas (cloned stores, identical file ids) + 1 client, one 3 Mb segment, 2 ms disk");
    c.note("fault arm: replica 0's host crashed ~1/3 through the read script (instant taken from the control timeline)");
    c.note("spike bound = kernel failure detection: max_retries x 200 ms retransmission budget before HostDown");
    c.note("before/after rows are gated against the no-fault control; the paper publishes no failover numbers");
    c
}
