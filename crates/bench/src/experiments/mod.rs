//! One experiment per table/figure of the paper.
//!
//! Each function builds fresh clusters, runs the paper's measurement
//! procedure, and returns a [`Comparison`](crate::report::Comparison) of
//! published vs measured values. `docs/BENCHMARKS.md` (repository root)
//! is the experiment index: ids, paper counterparts, the JSON artifact
//! format and the CI deviation gate.

mod ablations;
mod cachemix;
mod datapath;
mod engine;
mod failover;
mod fileserver;
mod multi;
mod pipeline;
mod rebalance;
mod shard;
mod table_4_1;
mod table_5;
mod table_6_1;
mod table_6_2;
mod table_6_3;
mod ten_mb;
mod wan;

pub use ablations::{
    ip_encapsulation, netserver_relay, protocol_ablations, streaming_comparison, wfs_comparison,
};
pub use cachemix::{cachemix, cachemix_with_rounds};
pub use datapath::{datapath, datapath_with_rounds};
pub use engine::{engine_throughput, engine_with_sizes};
pub use failover::{failover, failover_with_rounds};
pub use fileserver::file_server_capacity;
pub use multi::multi_process_traffic;
pub use pipeline::{pipeline_contention, pipeline_with_rounds};
pub use rebalance::{rebalance, rebalance_with_rounds};
pub use shard::{shard_placement, shard_with_rounds};
pub use table_4_1::{network_penalty, network_penalty_with_rounds};
pub use table_5::kernel_performance;
pub use table_6_1::page_access;
pub use table_6_2::sequential_access;
pub use table_6_3::program_loading;
pub use ten_mb::ten_mb_ethernet;
pub use wan::{wan_topologies, wan_with_rounds};

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId, Pid, Program};
use v_workloads::measure::{probe, CpuSnapshot, Probe, RunReport};

/// Iterations used for fast message-exchange loops.
pub(crate) const N_EXCHANGES: u64 = 1000;
/// Iterations used for bulk-transfer loops.
pub(crate) const N_MOVES: u64 = 300;
/// Iterations used for page-access loops.
pub(crate) const N_PAGES: u64 = 500;

/// A measured operation: elapsed per op plus client/server CPU per op.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Measured {
    pub elapsed_ms: f64,
    pub client_cpu_ms: f64,
    pub server_cpu_ms: f64,
}

/// Runs `client` against an already-spawned-and-settled server setup.
///
/// `setup` spawns the server side into the cluster and returns the pid the
/// client should talk to; the cluster is run to quiescence (servers
/// blocked in `Receive`) before CPU snapshots are taken, so setup costs do
/// not pollute the per-operation accounting.
pub(crate) fn run_client_server(
    mut cluster: Cluster,
    server_host: HostId,
    client_host: HostId,
    setup: impl FnOnce(&mut Cluster) -> Pid,
    client: impl FnOnce(Pid, Probe<RunReport>) -> Box<dyn Program>,
) -> (Measured, RunReport) {
    let server_pid = setup(&mut cluster);
    cluster.run(); // let the server reach its Receive
    let client_cpu = CpuSnapshot::take(&cluster, client_host);
    let server_cpu = CpuSnapshot::take(&cluster, server_host);
    let report = probe(RunReport::default());
    cluster.spawn(
        client_host,
        "bench-client",
        client(server_pid, report.clone()),
    );
    cluster.run();
    let r = report.borrow().clone();
    assert!(
        r.clean(),
        "benchmark loop failed: {r:?} (server {server_pid})"
    );
    let ops = r.iterations;
    let m = Measured {
        elapsed_ms: r.per_op_ms(),
        client_cpu_ms: client_cpu.per_op_ms(&cluster, ops),
        server_cpu_ms: server_cpu.per_op_ms(&cluster, ops),
    };
    (m, r)
}

/// A 2-host cluster of the paper's main (3 Mb) configuration.
pub(crate) fn pair_3mb(speed: CpuSpeed) -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(2, speed))
}

/// Runs `rounds` 512-byte page reads (server on host 1, client on
/// host 0, segment mode) and returns mean ms per read. Shared by the
/// WAN and shard-placement experiments, and deliberately identical in
/// procedure to the Table 6-1 remote-read loop so cross-topology rows
/// stay comparable.
pub(crate) fn run_page_reads(mut cl: Cluster, rounds: u64) -> f64 {
    use v_workloads::page::{PageClient, PageMode, PageOp, PageServer};
    let rep = probe(RunReport::default());
    let server = cl.spawn(
        HostId(1),
        "pageserver",
        Box::new(PageServer::new(PageMode::Segment, 512, 0x7E, rep.clone())),
    );
    cl.run();
    let crep = probe(RunReport::default());
    cl.spawn(
        HostId(0),
        "pageclient",
        Box::new(PageClient::new(
            server,
            PageOp::Read,
            512,
            rounds,
            0x7E,
            crep.clone(),
        )),
    );
    cl.run();
    let r = crep.borrow().clone();
    assert!(r.clean(), "page-read loop failed: {r:?}");
    r.per_op_ms()
}

/// A 2-host cluster on the 10 Mb standard Ethernet (§8).
pub(crate) fn pair_10mb(speed: CpuSpeed) -> Cluster {
    Cluster::new(ClusterConfig::ten_mb().with_hosts(2, speed))
}
