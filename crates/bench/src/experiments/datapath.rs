//! Raw speed on the data path: striped multi-arm disks and the
//! zero-copy same-host transport, each against its own ablation.
//!
//! Two independent accelerations of the paper's data path, measured
//! with their toggles off to pin the baseline and on to cap the gain:
//!
//! * **Striped arms** ([`v_fs::DiskParams::arms`]): the Table 6-1
//!   remote-read burst of the pipelining experiment, re-run with the
//!   team's one disk reshaped to 1, 2 and 4 striped arms. With four
//!   workers feeding it, the single spindle is the queueing centre; a
//!   striped unit serves the same burst from independent per-arm
//!   queues, and throughput scales until the next stage (the wire)
//!   takes over. `arms = 1` is construction-identical to the
//!   pre-striping server — the perturbation row is pinned to exactly
//!   0.0 by the calibration suite.
//! * **Local fast path** ([`v_kernel::ProtocolConfig::local_fastpath`]):
//!   the Table 6-1 page-read pair, co-located on one host. The classic
//!   local path charges a fixed cost plus a per-byte memory copy for
//!   every data hand-off; the fast path remaps the pages for one fixed
//!   local hop. Measured in both transfer styles (reply segments and
//!   Thoth `MoveTo`), plus a remote pair under the same toggle, whose
//!   perturbation must also be exactly 0.0 — the fast path lives
//!   strictly inside the same-host branch.
//!
//! The full run also re-times the boot storm at N = 256 and N = 1000
//! with single- and two-arm shard disks — the deployment the striping
//! defaults target — reporting the per-load improvement.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::{FsCall, FsClient, FsClientReport};
use v_fs::disk::DiskModel;
use v_fs::server::FileServerConfig;
use v_fs::store::BlockStore;
use v_fs::team::spawn_file_server;
use v_fs::BLOCK_SIZE;
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::SimDuration;
use v_workloads::boot::{run_boot_storm, BootStormConfig};
use v_workloads::measure::{probe, RunReport};
use v_workloads::page::{PageClient, PageMode, PageOp, PageServer};

use crate::report::Comparison;

use super::N_PAGES;

/// Workers in the serving team (enough to keep several arms busy).
const WORKERS: usize = 4;
/// Clients fanning into the striped burst.
const CLIENTS: usize = 8;
/// Blocks per client file.
const FILE_BLOCKS: usize = 8;

/// One striped-burst run's measurements.
struct ArmBurst {
    /// Mean ms per completed script step per client.
    per_read_ms: f64,
    /// Served load over the burst.
    req_per_s: f64,
    /// Per-arm utilization over the burst.
    arm_util: Vec<f64>,
}

/// Runs the pipelining experiment's 8-client burst against a `WORKERS`
/// team whose disk has `arms` striped arms. `arms = None` leaves
/// [`FileServerConfig::disk_arms`] at its default — the pre-striping
/// construction the `Some(1)` run must match to the bit.
fn run_striped_burst(arms: Option<usize>, reads: u64) -> ArmBurst {
    let mut cl =
        Cluster::new(ClusterConfig::three_mb().with_hosts(CLIENTS + 1, CpuSpeed::Mc68000At10MHz));
    let mut store = BlockStore::new();
    for i in 0..CLIENTS {
        store
            .create_with(&format!("vol{i}"), &vec![0x7E; FILE_BLOCKS * BLOCK_SIZE])
            .expect("fresh store");
    }
    let cfg = FileServerConfig {
        disk: DiskModel::fixed(SimDuration::from_millis(15)),
        disk_arms: arms.unwrap_or(FileServerConfig::default().disk_arms),
        // Isolate queueing: no speculative disk traffic.
        read_ahead: false,
        register: None,
        workers: WORKERS,
        ..FileServerConfig::default()
    };
    let team = spawn_file_server(&mut cl, HostId(0), cfg, store);
    cl.run(); // team settled: every process blocked receiving

    let t0 = cl.now();
    let reports: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let rep = Rc::new(RefCell::new(FsClientReport::default()));
            let mut script = vec![FsCall::Open(format!("vol{i}"))];
            for j in 0..reads {
                script.push(FsCall::ReadExpect {
                    block: (j % FILE_BLOCKS as u64) as u32,
                    count: BLOCK_SIZE as u32,
                    expect: 0x7E,
                });
            }
            cl.spawn(
                HostId(1 + i),
                "burst-client",
                Box::new(FsClient::new(team.server, script, rep.clone())),
            );
            rep
        })
        .collect();
    cl.run();
    let elapsed = cl.now().since(t0);

    let reports: Vec<FsClientReport> = reports.iter().map(|r| r.borrow().clone()).collect();
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.done && r.errors == 0 && r.integrity_errors == 0,
            "striped burst client {i} failed: {r:?}"
        );
    }
    let total_ops: u64 = reports.iter().map(|r| r.completed).sum();
    let per_read_ms = reports.iter().map(|r| r.elapsed_ms).sum::<f64>() / total_ops as f64;
    let arm_util = team
        .disk
        .borrow()
        .per_arm_stats()
        .iter()
        .map(|s| s.utilization(elapsed))
        .collect();
    ArmBurst {
        per_read_ms,
        req_per_s: total_ops as f64 / elapsed.as_secs_f64(),
        arm_util,
    }
}

/// One page-access pair run: mean ms per op plus the cluster's fastpath
/// counters (sends, bytes saved).
fn run_pair(mode: PageMode, fastpath: bool, colocated: bool, rounds: u64) -> (f64, u64, u64) {
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    cfg.protocol.local_fastpath = fastpath;
    let mut cl = Cluster::new(cfg);
    let server_host = if colocated { HostId(0) } else { HostId(1) };
    let srep = probe(RunReport::default());
    let server = cl.spawn(
        server_host,
        "pageserver",
        Box::new(PageServer::new(mode, 512, 0x7E, srep.clone())),
    );
    cl.run();
    let crep = probe(RunReport::default());
    cl.spawn(
        HostId(0),
        "pageclient",
        Box::new(PageClient::new(
            server,
            PageOp::Read,
            512,
            rounds,
            0x7E,
            crep.clone(),
        )),
    );
    cl.run();
    let r = crep.borrow().clone();
    assert!(r.clean(), "page pair failed: {r:?}");
    let (mut sends, mut saved) = (0, 0);
    for h in [HostId(0), HostId(1)] {
        let s = cl.kernel_stats(h);
        sends += s.local_fastpath_sends;
        saved += s.local_fastpath_bytes_saved;
    }
    (r.per_op_ms(), sends, saved)
}

/// Re-times one boot storm at `clients` hosts with `arms` shard disk
/// arms, returning the mean per-client load time.
fn storm_load_ms(clients: usize, arms: usize) -> f64 {
    let mut cfg = BootStormConfig::new(clients);
    cfg.disk_arms = arms;
    let r = run_boot_storm(&cfg);
    assert_eq!(
        r.loaded as usize, clients,
        "storm must load every client: {r:?}"
    );
    r.load_ms_mean
}

/// The data-path table with the full round count, including the boot
/// storm re-timings.
pub fn datapath() -> Comparison {
    datapath_impl(N_PAGES.min(60), true)
}

/// [`datapath`] with a configurable round count and no storm rows; the
/// CI smoke job runs a handful of rounds to keep the check cheap.
pub fn datapath_with_rounds(reads: u64) -> Comparison {
    datapath_impl(reads, false)
}

fn datapath_impl(reads: u64, storms: bool) -> Comparison {
    let mut c = Comparison::new(
        "Datapath",
        "striped multi-arm disks + zero-copy same-host transport, 10 MHz",
    );

    // --- striped arms under the pipelined burst -------------------------
    let default_cfg = run_striped_burst(None, reads);
    let mut by_arms = Vec::new();
    for arms in [1usize, 2, 4] {
        let b = run_striped_burst(Some(arms), reads);
        c.push_ours(
            format!("burst of {CLIENTS}, arms={arms}: served load"),
            b.req_per_s,
            "req/s",
        );
        c.push_ours(
            format!("burst of {CLIENTS}, arms={arms}: per read"),
            b.per_read_ms,
            "ms",
        );
        by_arms.push(b);
    }
    c.push_ours(
        "arms=4 throughput gain over arms=1",
        by_arms[2].req_per_s / by_arms[0].req_per_s,
        "x",
    );
    for (k, util) in by_arms[2].arm_util.iter().enumerate() {
        c.push_ours(
            format!("arms=4 burst: arm {k} utilization"),
            util * 100.0,
            "%",
        );
    }
    // Pinned to exactly 0.0 by the calibration suite: a 1-arm build is
    // the pre-striping disk, not a near miss of it.
    c.push_ours(
        "arms=1 perturbation of the single-arm burst",
        by_arms[0].per_read_ms - default_cfg.per_read_ms,
        "ms",
    );

    // --- the zero-copy local fast path ----------------------------------
    let (seg_copy, _, _) = run_pair(PageMode::Segment, false, true, reads);
    let (seg_fast, seg_sends, seg_saved) = run_pair(PageMode::Segment, true, true, reads);
    let (mv_copy, _, _) = run_pair(PageMode::Thoth, false, true, reads);
    let (mv_fast, _, _) = run_pair(PageMode::Thoth, true, true, reads);
    c.push_ours("co-located page read, copy path", seg_copy, "ms");
    c.push_ours("co-located page read, fast path", seg_fast, "ms");
    c.push_ours("co-located page read speedup", seg_copy / seg_fast, "x");
    c.push_ours("co-located Thoth (MoveTo) read, copy path", mv_copy, "ms");
    c.push_ours("co-located Thoth (MoveTo) read, fast path", mv_fast, "ms");
    c.push_ours(
        "fast-path hand-offs per read",
        seg_sends as f64 / reads as f64,
        "ops",
    );
    c.push_ours(
        "copy bytes saved per read",
        seg_saved as f64 / reads as f64,
        "B",
    );

    let (remote_off, _, _) = run_pair(PageMode::Segment, false, false, reads);
    let (remote_on, remote_sends, _) = run_pair(PageMode::Segment, true, false, reads);
    c.push_ours("remote page read, fast path off", remote_off, "ms");
    c.push_ours("remote page read, fast path on", remote_on, "ms");
    // Pinned to exactly 0.0 by the calibration suite: the toggle must
    // be invisible to any exchange that touches the wire.
    c.push_ours(
        "fastpath perturbation of the remote pair",
        remote_on - remote_off,
        "ms",
    );
    assert_eq!(remote_sends, 0, "the fast path must never fire remotely");
    c.push_ours(
        "wire tax on page reads (remote minus co-located, fast path)",
        remote_off - seg_fast,
        "ms",
    );

    // --- the boot storm on striped shard disks --------------------------
    if storms {
        for clients in [256usize, 1000] {
            let one = storm_load_ms(clients, 1);
            let two = storm_load_ms(clients, 2);
            c.push_ours(format!("storm N={clients}: mean load, 1 arm"), one, "ms");
            c.push_ours(format!("storm N={clients}: mean load, 2 arms"), two, "ms");
            c.push_ours(
                format!("storm N={clients}: 2-arm improvement"),
                (one - two) / one * 100.0,
                "%",
            );
        }
    }

    c.note(format!(
        "burst: {CLIENTS} clients, one per host, each opening a private {FILE_BLOCKS}-block \
         file and reading {reads} pages through a {WORKERS}-worker team on a 15 ms disk \
         (read-ahead off); block-striped arms serve independent per-arm queues"
    ));
    c.note(
        "pair: Table 6-1 page-read procedure, 512 B; co-located = client and server on one \
         host, where data moves by page remap (one fixed local hop) instead of kernel copy",
    );
    if storms {
        c.note(
            "storm: mean per-client image load (open + header + 8 KB image) over the sharded \
             mesh; 2-arm rows are the storm's default disk shape, 1-arm the ablation",
        );
    }
    c
}
