//! Tables 5-1 / 5-2: kernel IPC performance.

use v_kernel::{CostModel, CpuSpeed, HostId};
use v_net::NetParams;
use v_workloads::echo::{EchoServer, GetTimeLooper, Pinger};
use v_workloads::measure::probe;
use v_workloads::mover::{Grantor, MoveDir, Mover};

use crate::paper::{self, KernelPerfRow};
use crate::report::Comparison;

use super::{pair_3mb, run_client_server, Measured, N_EXCHANGES, N_MOVES};

/// Measures the `GetTime` loop (local only).
fn measure_gettime(speed: CpuSpeed) -> f64 {
    let mut cl = pair_3mb(speed);
    let rep = probe(Default::default());
    cl.spawn(
        HostId(0),
        "gettime",
        Box::new(GetTimeLooper {
            n: N_EXCHANGES,
            report: rep.clone(),
        }),
    );
    cl.run();
    let r = rep.borrow();
    r.per_op_ms()
}

/// Measures a Send-Receive-Reply loop.
pub(crate) fn measure_srr(speed: CpuSpeed, remote: bool) -> Measured {
    let cl = pair_3mb(speed);
    let server_host = HostId(if remote { 1 } else { 0 });
    let (m, _) = run_client_server(
        cl,
        server_host,
        HostId(0),
        |cl| cl.spawn(server_host, "echo", Box::new(EchoServer)),
        |server, rep| Box::new(Pinger::new(server, N_EXCHANGES, rep)),
    );
    m
}

/// Measures a standing-grant MoveTo/MoveFrom loop.
///
/// The mover (the active process, on host 0) is the "client"; the
/// granting process's host is the "server".
fn measure_move(speed: CpuSpeed, dir: MoveDir, remote: bool, size: u32) -> Measured {
    let mut cl = pair_3mb(speed);
    let grantor_host = HostId(if remote { 1 } else { 0 });
    let rep = probe(Default::default());
    let mover = cl.spawn(
        HostId(0),
        "mover",
        Box::new(Mover::new(N_MOVES, size, dir, 0x5A, rep.clone())),
    );
    cl.run(); // mover blocks in Receive awaiting the grant
    let client_cpu = v_workloads::measure::CpuSnapshot::take(&cl, HostId(0));
    let server_cpu = v_workloads::measure::CpuSnapshot::take(&cl, grantor_host);
    cl.spawn(
        grantor_host,
        "grantor",
        Box::new(Grantor {
            mover,
            size,
            pattern: 0x5A,
            dir,
            report: rep.clone(),
        }),
    );
    cl.run();
    let r = rep.borrow().clone();
    assert!(r.clean(), "move loop failed: {r:?}");
    Measured {
        elapsed_ms: r.per_op_ms(),
        client_cpu_ms: client_cpu.per_op_ms(&cl, r.iterations),
        server_cpu_ms: server_cpu.per_op_ms(&cl, r.iterations),
    }
}

/// Reproduces Table 5-1 (8 MHz) or Table 5-2 (10 MHz).
pub fn kernel_performance(speed: CpuSpeed) -> Comparison {
    let (id, rows): (&str, &[KernelPerfRow]) = match speed {
        CpuSpeed::Mc68000At8MHz => ("Table 5-1", &paper::TABLE_5_1),
        CpuSpeed::Mc68000At10MHz => ("Table 5-2", &paper::TABLE_5_2),
    };
    let mhz = match speed {
        CpuSpeed::Mc68000At8MHz => 8,
        CpuSpeed::Mc68000At10MHz => 10,
    };
    let mut c = Comparison::new(id, format!("kernel performance, {mhz} MHz, 3 Mb Ethernet"));

    let model = CostModel::for_speed(speed);
    let net = NetParams::for_kind(v_net::NetworkKind::Experimental3Mb);

    for row in rows {
        match row.op {
            "GetTime" => {
                let ms = measure_gettime(speed);
                c.push("GetTime local", row.local, ms, "ms");
            }
            "Send-Receive-Reply" => {
                let local = measure_srr(speed, false);
                let remote = measure_srr(speed, true);
                c.push(
                    "Send-Receive-Reply local",
                    row.local,
                    local.elapsed_ms,
                    "ms",
                );
                c.push(
                    "Send-Receive-Reply remote",
                    row.remote,
                    remote.elapsed_ms,
                    "ms",
                );
                // Two 64-byte datagrams per exchange.
                let pen = 2.0 * model.network_penalty(&net, 64).as_millis_f64();
                c.push("Send-Receive-Reply penalty", row.penalty, pen, "ms");
                c.push(
                    "Send-Receive-Reply client CPU",
                    row.client,
                    remote.client_cpu_ms,
                    "ms",
                );
                c.push(
                    "Send-Receive-Reply server CPU",
                    row.server,
                    remote.server_cpu_ms,
                    "ms",
                );
            }
            op @ ("MoveFrom 1024B" | "MoveTo 1024B") => {
                let dir = if op.starts_with("MoveFrom") {
                    MoveDir::From
                } else {
                    MoveDir::To
                };
                let local = measure_move(speed, dir, false, 1024);
                let remote = measure_move(speed, dir, true, 1024);
                c.push(format!("{op} local"), row.local, local.elapsed_ms, "ms");
                c.push(format!("{op} remote"), row.remote, remote.elapsed_ms, "ms");
                // 1024 bytes travel as two 576-byte data packets.
                let pen = 2.0 * model.network_penalty(&net, 576).as_millis_f64();
                c.push(format!("{op} penalty"), row.penalty, pen, "ms");
                c.push(
                    format!("{op} client CPU"),
                    row.client,
                    remote.client_cpu_ms,
                    "ms",
                );
                c.push(
                    format!("{op} server CPU"),
                    row.server,
                    remote.server_cpu_ms,
                    "ms",
                );
            }
            other => unreachable!("unknown op {other}"),
        }
    }
    c.note("client = the active (sending/moving) process's host; server = its peer");
    c.note("transfer penalty = 2 x P(576): 1024 bytes as two 512-byte-data packets");
    c
}
