//! Client-side block caching under mixed workloads.
//!
//! The paper's Table 6-1 charges the network for **every** page read;
//! its §6.3 observation that program loading (read-mostly shared text)
//! dominates diskless traffic is exactly the workload a per-client
//! block cache converts from network round trips into local hits. This
//! table quantifies that conversion — and its price, the consistency
//! protocol — across the axes that matter:
//!
//! * **cache size × working set** — a working set that fits the cache
//!   hits after one cold pass; one that thrashes pays the full Table
//!   6-1 latency plus the protocol's registration overhead;
//! * **sharing ratio** — a writer invalidating (or waiting out leases
//!   on) a concurrent reader's cache, at read-mostly and write-heavy
//!   mixes, under both consistency schemes;
//! * **invalidation storm** — one write against N warm caching
//!   readers: write-invalidate pays N callbacks before the write
//!   commits, leases pay one bounded expiry wait regardless of N;
//! * **boot-storm re-timings** (full run only) — the N=256 / N=1000
//!   storms rerun with a post-load shared-text reread phase, cached vs
//!   uncached: the per-load and served-load wins client caching buys.
//!
//! `CacheMode::Off` must be **bit-identical** to the pre-cache client —
//! the perturbation row is pinned to exactly 0.0 by the calibration
//! suite, the same discipline every other opt-in datapath feature in
//! this repo ships under.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::{FsCall, FsClient, FsClientReport};
use v_fs::{
    spawn_caching_client, spawn_file_server, BlockStore, CacheConfig, CacheMode, CacheStats,
    DiskModel, FileServerConfig, FileServerStats, BLOCK_SIZE,
};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::SimDuration;
use v_workloads::boot::{run_boot_storm, BootStormConfig};

use crate::report::Comparison;

use super::N_PAGES;

/// Blocks in the benchmark volume (bounds every working set below).
const VOL_BLOCKS: usize = 128;
/// Fill byte of the volume (and of every write, so concurrent readers
/// can keep verifying content).
const FILL: u8 = 0x7E;

/// A 2 ms-per-request disk behind a server running `mode`.
fn server_cfg(mode: CacheMode) -> FileServerConfig {
    FileServerConfig {
        disk: DiskModel::fixed(SimDuration::from_millis(2)),
        cache_mode: mode,
        ..FileServerConfig::default()
    }
}

/// The read-mix outcome: mean ms per script op, client cache counters,
/// and the server team's counters.
struct MixOutcome {
    per_op_ms: f64,
    cache: CacheStats,
    server: FileServerStats,
}

/// Runs `reads` 512-byte page reads cycling over a `working_set`-block
/// file. `client` picks the cache arrangement; `plain` bypasses
/// [`spawn_caching_client`] entirely and spawns the pre-cache
/// [`FsClient`] — the arm the Off perturbation row pins against.
fn run_read_mix(
    server_mode: CacheMode,
    client: &CacheConfig,
    plain: bool,
    working_set: u32,
    reads: u64,
) -> MixOutcome {
    let speed = CpuSpeed::Mc68000At10MHz;
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(2, speed));
    let mut store = BlockStore::new();
    store
        .create_with("vol", &vec![FILL; VOL_BLOCKS * BLOCK_SIZE])
        .expect("fresh store");
    let team = spawn_file_server(&mut cl, HostId(1), server_cfg(server_mode), store);
    cl.run();

    let mut script = vec![FsCall::Open("vol".into())];
    for i in 0..reads {
        script.push(FsCall::ReadExpect {
            block: (i % working_set as u64) as u32,
            count: BLOCK_SIZE as u32,
            expect: FILL,
        });
    }
    let ops = script.len() as f64;
    let rep = Rc::new(RefCell::new(FsClientReport::default()));
    let handle = if plain {
        cl.spawn(
            HostId(0),
            "fsclient",
            Box::new(FsClient::new(team.server, script, rep.clone())),
        );
        None
    } else {
        Some(spawn_caching_client(
            &mut cl,
            HostId(0),
            team.server,
            script,
            rep.clone(),
            client,
        ))
    };
    cl.run();
    let r = rep.borrow().clone();
    assert!(
        r.done && r.errors == 0 && r.integrity_errors == 0,
        "read mix failed: {r:?}"
    );
    let server = team.stats.borrow().clone();
    MixOutcome {
        per_op_ms: r.elapsed_ms / ops,
        cache: handle.map(|h| h.stats()).unwrap_or_default(),
        server,
    }
}

/// The sharing-mix outcome: the caching reader's side, the writer's
/// side, and the server's consistency counters.
struct SharedOutcome {
    reader_ms: f64,
    hit_rate: f64,
    writer_ms: f64,
    server: FileServerStats,
}

/// A caching reader (working set 8 blocks, 64-block cache) racing a
/// plain writer over one shared file, under `scheme`. The writer's
/// fills repeat the volume's byte, so the reader verifies content
/// throughout. Leases run on a 200 ms lease — long enough to cover the
/// reader's revisit cycle (hits), short enough that the writer's waits
/// resolve inside the run.
fn run_shared(scheme: CacheMode, reads: u64, writes: u64) -> SharedOutcome {
    let speed = CpuSpeed::Mc68000At10MHz;
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(3, speed));
    let mut store = BlockStore::new();
    store
        .create_with("vol", &vec![FILL; VOL_BLOCKS * BLOCK_SIZE])
        .expect("fresh store");
    let cfg = FileServerConfig {
        lease: SimDuration::from_millis(200),
        ..server_cfg(scheme)
    };
    let team = spawn_file_server(&mut cl, HostId(2), cfg, store);
    cl.run();

    let mut read_script = vec![FsCall::Open("vol".into())];
    for i in 0..reads {
        read_script.push(FsCall::ReadExpect {
            block: (i % 8) as u32,
            count: BLOCK_SIZE as u32,
            expect: FILL,
        });
    }
    let read_ops = read_script.len() as f64;
    let rrep = Rc::new(RefCell::new(FsClientReport::default()));
    let cache_cfg = match scheme {
        CacheMode::Off => CacheConfig::off(),
        CacheMode::WriteInvalidate => CacheConfig::write_invalidate(64),
        CacheMode::Leases => CacheConfig::leases(64),
    };
    let reader = spawn_caching_client(
        &mut cl,
        HostId(0),
        team.server,
        read_script,
        rrep.clone(),
        &cache_cfg,
    );

    let mut write_script = vec![FsCall::Open("vol".into())];
    for i in 0..writes {
        write_script.push(FsCall::WriteFill {
            block: (i % 8) as u32,
            count: BLOCK_SIZE as u32,
            fill: FILL,
        });
    }
    let write_ops = write_script.len() as f64;
    let wrep = Rc::new(RefCell::new(FsClientReport::default()));
    cl.spawn(
        HostId(1),
        "writer",
        Box::new(FsClient::new(team.server, write_script, wrep.clone())),
    );
    cl.run();

    let r = rrep.borrow().clone();
    let w = wrep.borrow().clone();
    assert!(
        r.done && r.errors == 0 && r.integrity_errors == 0,
        "shared reader failed: {r:?}"
    );
    assert!(
        w.done && w.errors == 0 && w.integrity_errors == 0,
        "shared writer failed: {w:?}"
    );
    let server = team.stats.borrow().clone();
    SharedOutcome {
        reader_ms: r.elapsed_ms / read_ops,
        hit_rate: reader.stats().hit_rate(),
        writer_ms: w.elapsed_ms / write_ops,
        server,
    }
}

/// One write against `readers` warm caching readers under `scheme`:
/// returns (writer ms per op, server stats). Write-invalidate must call
/// back every holder before the write commits; leases wait out the last
/// unexpired grant, however many holders exist. The lease arm warms
/// under a 2 s lease and stops the clock at 800 ms ([`Cluster::run_for`])
/// so the write lands while every grant is still live — the regime the
/// scheme is priced for.
fn run_invalidation_storm(scheme: CacheMode, readers: usize) -> (f64, FileServerStats) {
    let speed = CpuSpeed::Mc68000At10MHz;
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(readers + 2, speed));
    let mut store = BlockStore::new();
    store
        .create_with("vol", &vec![FILL; VOL_BLOCKS * BLOCK_SIZE])
        .expect("fresh store");
    let cfg = FileServerConfig {
        lease: SimDuration::from_millis(8000),
        ..server_cfg(scheme)
    };
    let team = spawn_file_server(&mut cl, HostId(readers + 1), cfg, store);
    cl.run();

    // Warm every reader's cache (each registers as a holder).
    let cache_cfg = match scheme {
        CacheMode::Off => CacheConfig::off(),
        CacheMode::WriteInvalidate => CacheConfig::write_invalidate(16),
        CacheMode::Leases => CacheConfig::leases(16),
    };
    let mut script = vec![FsCall::Open("vol".into())];
    for b in 0..4u32 {
        script.push(FsCall::ReadExpect {
            block: b,
            count: BLOCK_SIZE as u32,
            expect: FILL,
        });
    }
    let mut handles = Vec::new();
    for h in 0..readers {
        let rep = Rc::new(RefCell::new(FsClientReport::default()));
        handles.push((
            spawn_caching_client(
                &mut cl,
                HostId(h),
                team.server,
                script.clone(),
                rep.clone(),
                &cache_cfg,
            ),
            rep,
        ));
    }
    cl.run();
    for (_, rep) in &handles {
        let r = rep.borrow();
        assert!(r.done && r.errors == 0, "warm reader failed: {r:?}");
    }

    // One write: the consistency protocol runs before it commits.
    let wrep = Rc::new(RefCell::new(FsClientReport::default()));
    cl.spawn(
        HostId(readers),
        "storm-writer",
        Box::new(FsClient::new(
            team.server,
            vec![
                FsCall::Open("vol".into()),
                FsCall::WriteFill {
                    block: 0,
                    count: BLOCK_SIZE as u32,
                    fill: FILL,
                },
            ],
            wrep.clone(),
        )),
    );
    cl.run();
    let w = wrep.borrow().clone();
    assert!(w.done && w.errors == 0, "storm writer failed: {w:?}");
    let stats = team.stats.borrow().clone();
    (w.elapsed_ms / 2.0, stats)
}

/// Boot-storm reread re-timing at `clients` hosts: uncached vs a
/// 64-block per-client cache over the same 8-block × 4-pass shared-text
/// reread.
fn storm_rows(c: &mut Comparison, clients: usize) {
    let mut base = BootStormConfig::new(clients);
    base.reread_blocks = 8;
    base.reread_passes = 4;
    let mut cached = base.clone();
    cached.client_cache = 64;
    let r0 = run_boot_storm(&base);
    let r1 = run_boot_storm(&cached);
    assert_eq!(r0.loaded as usize, clients, "uncached storm: {r0:?}");
    assert_eq!(r1.loaded as usize, clients, "cached storm: {r1:?}");
    c.push_ours(
        format!("boot storm N={clients}: reread per op, uncached"),
        r0.reread_ms_mean,
        "ms",
    );
    c.push_ours(
        format!("boot storm N={clients}: reread per op, cached"),
        r1.reread_ms_mean,
        "ms",
    );
    c.push_ours(
        format!("boot storm N={clients}: served load, uncached"),
        r0.reread_reqs_per_s,
        "req/s",
    );
    c.push_ours(
        format!("boot storm N={clients}: served load, cached"),
        r1.reread_reqs_per_s,
        "req/s",
    );
    c.push_ours(
        format!("boot storm N={clients}: served-load gain"),
        r1.reread_reqs_per_s / r0.reread_reqs_per_s,
        "x",
    );
    c.push_ours(
        format!("boot storm N={clients}: cache hits"),
        r1.cache_hits as f64,
        "hits",
    );
}

/// The cache-mix table with the full round count, including the
/// boot-storm re-timings.
pub fn cachemix() -> Comparison {
    cachemix_impl(N_PAGES.min(256), true)
}

/// [`cachemix`] with a configurable read count and no storm rows; the
/// CI smoke job runs a handful of reads to keep the check cheap.
pub fn cachemix_with_rounds(reads: u64) -> Comparison {
    cachemix_impl(reads, false)
}

fn cachemix_impl(reads: u64, storms: bool) -> Comparison {
    let mut c = Comparison::new(
        "Cachemix",
        "client block caching & consistency under mixed workloads, 10 MHz",
    );

    // --- Off is the pre-cache client, to the bit ------------------------
    let plain = run_read_mix(CacheMode::Off, &CacheConfig::off(), true, 8, reads);
    let off = run_read_mix(CacheMode::Off, &CacheConfig::off(), false, 8, reads);
    c.push_ours("page read 512 B, pre-cache client", plain.per_op_ms, "ms");
    c.push_ours("page read 512 B, cache off", off.per_op_ms, "ms");
    // Pinned to exactly 0.0 by the calibration suite: Off is not a
    // near miss of the old client, it IS the old client.
    c.push_ours(
        "cache-off perturbation",
        off.per_op_ms - plain.per_op_ms,
        "ms",
    );

    // --- cache size × working set (write-invalidate) --------------------
    let fit = run_read_mix(
        CacheMode::WriteInvalidate,
        &CacheConfig::write_invalidate(64),
        false,
        8,
        reads,
    );
    let tight = run_read_mix(
        CacheMode::WriteInvalidate,
        &CacheConfig::write_invalidate(4),
        false,
        8,
        reads,
    );
    let thrash = run_read_mix(
        CacheMode::WriteInvalidate,
        &CacheConfig::write_invalidate(16),
        false,
        128,
        reads,
    );
    c.push_ours("ws=8 in 64-block cache: per read", fit.per_op_ms, "ms");
    c.push_ours(
        "ws=8 in 64-block cache: hit rate",
        fit.cache.hit_rate(),
        "%",
    );
    c.push_ours(
        "ws=8 in 64-block cache: speedup over uncached",
        plain.per_op_ms / fit.per_op_ms,
        "x",
    );
    c.push_ours("ws=8 in 4-block cache: per read", tight.per_op_ms, "ms");
    c.push_ours(
        "ws=8 in 4-block cache: hit rate",
        tight.cache.hit_rate(),
        "%",
    );
    c.push_ours("ws=128 in 16-block cache: per read", thrash.per_op_ms, "ms");
    c.push_ours(
        "ws=128 in 16-block cache: hit rate",
        thrash.cache.hit_rate(),
        "%",
    );
    c.push_ours(
        "ws=128 in 16-block cache: evictions",
        thrash.cache.evictions as f64,
        "blocks",
    );
    let (heat_reads, _) = fit
        .server
        .heat
        .hottest()
        .map(|(f, _)| fit.server.heat.of(f))
        .unwrap_or((0, 0));
    c.push_ours(
        "server heat: reads of hottest file (ws=8 fit)",
        heat_reads as f64,
        "reads",
    );

    // --- leases on the same read-mostly mix -----------------------------
    let lease_fit = run_read_mix(CacheMode::Leases, &CacheConfig::leases(64), false, 8, reads);
    c.push_ours(
        "ws=8 in 64-block cache (leases): per read",
        lease_fit.per_op_ms,
        "ms",
    );
    c.push_ours(
        "ws=8 in 64-block cache (leases): hit rate",
        lease_fit.cache.hit_rate(),
        "%",
    );

    // --- sharing ratio × consistency scheme -----------------------------
    let heavy_writes = (reads / 8).max(2);
    let light_writes = (reads / 64).max(1);
    for (scheme, tag) in [
        (CacheMode::WriteInvalidate, "write-invalidate"),
        (CacheMode::Leases, "leases"),
    ] {
        let light = run_shared(scheme, reads, light_writes);
        let heavy = run_shared(scheme, reads, heavy_writes);
        c.push_ours(
            format!("shared 1:{}: reader per read, {tag}", reads / light_writes),
            light.reader_ms,
            "ms",
        );
        c.push_ours(
            format!("shared 1:{}: reader hit rate, {tag}", reads / light_writes),
            light.hit_rate,
            "%",
        );
        c.push_ours(
            format!("shared 1:{}: reader per read, {tag}", reads / heavy_writes),
            heavy.reader_ms,
            "ms",
        );
        c.push_ours(
            format!("shared 1:{}: reader hit rate, {tag}", reads / heavy_writes),
            heavy.hit_rate,
            "%",
        );
        c.push_ours(
            format!("shared 1:{}: writer per op, {tag}", reads / heavy_writes),
            heavy.writer_ms,
            "ms",
        );
        let consistency = heavy.server.invalidations + heavy.server.lease_waits;
        c.push_ours(
            format!(
                "shared 1:{}: consistency actions, {tag}",
                reads / heavy_writes
            ),
            consistency as f64,
            "ops",
        );
    }

    // --- invalidation storm ---------------------------------------------
    let (wi_small_ms, _) = run_invalidation_storm(CacheMode::WriteInvalidate, 4);
    let (wi_big_ms, wi_big) = run_invalidation_storm(CacheMode::WriteInvalidate, 16);
    let (lease_small_ms, _) = run_invalidation_storm(CacheMode::Leases, 4);
    let (lease_big_ms, lease_big) = run_invalidation_storm(CacheMode::Leases, 16);
    c.push_ours(
        "storm write vs 4 warm readers, write-invalidate",
        wi_small_ms,
        "ms",
    );
    c.push_ours(
        "storm write vs 16 warm readers, write-invalidate",
        wi_big_ms,
        "ms",
    );
    c.push_ours(
        "storm invalidations delivered (N=16)",
        wi_big.invalidations as f64,
        "callbacks",
    );
    c.push_ours(
        "storm write vs 4 warm readers, leases",
        lease_small_ms,
        "ms",
    );
    c.push_ours("storm write vs 16 warm readers, leases", lease_big_ms, "ms");
    c.push_ours(
        "storm lease waits (N=16)",
        lease_big.lease_waits as f64,
        "waits",
    );

    // --- boot-storm re-timings (full run only) --------------------------
    if storms {
        storm_rows(&mut c, 256);
        storm_rows(&mut c, 1000);
    }

    c.note("server: 2 ms fixed disk; volume 128 × 512 B blocks; reads cycle the working set");
    c.note("hits cost one 200 µs local CPU charge; misses pay the full Table 6-1 path");
    c.note(
        "sharing rows: 200 ms leases; writer fills repeat the volume byte so reads keep verifying",
    );
    c.note("storm: N readers warm 4 blocks each, then one writer commits a single block write");
    c.note("storm leases run an 8 s term so the grants outlive the warm drain: the write waits out the remainder, independent of N");
    c.note("boot-storm rows: 8-block × 4-pass shared-text reread after the §6.3 image load");
    c.note("no paper counterpart — the 1983 workstations had no client block cache (§6 reads are all remote)");
    c
}
