//! Beyond the paper's single segment: message exchange (the Table 4-1
//! procedure's successor at message level) and Table 6-1 page reads
//! rerun across a store-and-forward gateway, and exchanges over a lossy
//! point-to-point WAN link.
//!
//! The paper's tables all assume one shared Ethernet; these rows
//! quantify what its protocol costs once a gateway hop or a long-haul
//! line sits between client and server. There are no published values
//! to compare against — every row is measurement-only — but the table
//! must show **nonzero added hop latency** and **loss-driven
//! retransmissions**, which the calibration suite and CI artifact keep
//! honest.

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId, KernelStats};
use v_net::{InternetworkConfig, LinkParams, MeshConfig};
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::measure::{probe, RunReport};
use v_workloads::mover::{Grantor, MoveDir, Mover};

use crate::report::Comparison;

use super::{pair_3mb, run_page_reads};

/// Runs `rounds` remote exchanges (echo on host 1, pinger on host 0);
/// returns mean ms per exchange and the finished cluster for stats.
fn run_exchange(mut cl: Cluster, rounds: u64) -> (f64, Cluster) {
    let echo = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
    cl.run(); // let the server reach its Receive
    let rep = probe(RunReport::default());
    cl.spawn(
        HostId(0),
        "pinger",
        Box::new(Pinger::new(echo, rounds, rep.clone())),
    );
    cl.run();
    let r = rep.borrow().clone();
    assert!(r.clean(), "exchange loop failed: {r:?}");
    (r.per_op_ms(), cl)
}

/// A client on segment 0 and a server on segment 1 of a two-segment
/// 3 Mb internetwork.
fn gateway_pair(speed: CpuSpeed) -> Cluster {
    Cluster::new(
        ClusterConfig::internetwork(InternetworkConfig::two_segments())
            .with_host_on(speed, 0)
            .with_host_on(speed, 1),
    )
}

/// The internetwork the bulk-transfer ablation runs over: a 10 Mb
/// ingress segment feeding a 3 Mb egress through the gateway, with a
/// queue deep enough to hold a whole transfer's chunks. The speed
/// mismatch makes the chunks pile up at the gateway — every serviced
/// frame has queued same-egress successors, the regime coalescing
/// exists for.
fn bulk_topology() -> InternetworkConfig {
    let mut cfg = InternetworkConfig::two_segments();
    cfg.segments = vec![
        v_net::NetworkKind::Standard10Mb,
        v_net::NetworkKind::Experimental3Mb,
    ];
    cfg.gateway_queue = 64;
    cfg
}

/// Mean ms per cross-gateway bulk `MoveTo` of `size` bytes, plus the
/// gateway's coalesced-frame count. The mover (fast segment 0) pushes
/// each transfer as back-to-back chunk packets toward the grantor
/// (slow segment 1), so the chunks queue at the gateway. `Some(on)`
/// builds the mesh with the flag set explicitly; `None` goes through
/// the plain internetwork constructor, the pre-coalescing configuration
/// the perturbation row pins against.
fn run_bulk_move(speed: CpuSpeed, coalesce: Option<bool>, size: u32, rounds: u64) -> (f64, u64) {
    let topo = match coalesce {
        None => ClusterConfig::internetwork(bulk_topology()),
        Some(on) => {
            let mesh: MeshConfig = bulk_topology().into();
            ClusterConfig::mesh(if on { mesh.with_coalescing() } else { mesh })
        }
    };
    let mut cl = Cluster::new(topo.with_host_on(speed, 0).with_host_on(speed, 1));
    let rep = probe(RunReport::default());
    let mover = cl.spawn(
        HostId(0),
        "mover",
        Box::new(Mover::new(rounds, size, MoveDir::To, 0x5A, rep.clone())),
    );
    cl.spawn(
        HostId(1),
        "grantor",
        Box::new(Grantor {
            mover,
            size,
            pattern: 0x5A,
            dir: MoveDir::To,
            report: rep.clone(),
        }),
    );
    cl.run();
    let r = rep.borrow().clone();
    assert!(r.clean(), "bulk move loop failed: {r:?}");
    let coalesced = cl.gateway_stats_total().map_or(0, |g| g.coalesced);
    (r.per_op_ms(), coalesced)
}

/// The WAN/internetwork table with the full round count.
pub fn wan_topologies() -> Comparison {
    wan_with_rounds(200)
}

/// [`wan_topologies`] with a configurable round count; the CI smoke job
/// runs a handful of rounds to keep the pipeline check cheap.
pub fn wan_with_rounds(rounds: u64) -> Comparison {
    let speed = CpuSpeed::Mc68000At8MHz;
    let mut c = Comparison::new(
        "WAN",
        "message exchange and page reads beyond one segment, 8 MHz",
    );

    // Message exchange: one segment vs across the gateway.
    let (seg_ms, _) = run_exchange(pair_3mb(speed), rounds);
    let (gw_ms, gw_cl) = run_exchange(gateway_pair(speed), rounds);
    let g = gw_cl.gateway_stats_total().expect("gateway topology");
    c.push_ours("remote exchange, one 3 Mb segment", seg_ms, "ms");
    c.push_ours("remote exchange, across gateway", gw_ms, "ms");
    c.push_ours("added gateway hop latency", gw_ms - seg_ms, "ms");
    c.push_ours("gateway frames forwarded", g.forwarded as f64, "frames");

    // Table 6-1 page reads: one segment vs across the gateway.
    let read_seg = run_page_reads(pair_3mb(speed), rounds);
    let read_gw = run_page_reads(gateway_pair(speed), rounds);
    c.push_ours("page read 512 B, one segment", read_seg, "ms");
    c.push_ours("page read 512 B, across gateway", read_gw, "ms");
    c.push_ours("page read added hop latency", read_gw - read_seg, "ms");

    // Gateway frame coalescing ablation: a 16 KB cross-gateway MoveTo
    // queues its chunk packets at the gateway; with coalescing the
    // queued same-egress chunks share one forwarding charge per burst.
    // The off arm must reproduce the plain internetwork numbers to the
    // bit (the calibration suite pins the perturbation row to 0.0).
    let bulk_rounds = (rounds / 10).max(4);
    let (bulk_base, _) = run_bulk_move(speed, None, 16 * 1024, bulk_rounds);
    let (bulk_off, off_coalesced) = run_bulk_move(speed, Some(false), 16 * 1024, bulk_rounds);
    let (bulk_on, on_coalesced) = run_bulk_move(speed, Some(true), 16 * 1024, bulk_rounds);
    c.push_ours(
        "bulk 16 KB MoveTo across gateway, coalescing off",
        bulk_off,
        "ms",
    );
    c.push_ours(
        "bulk 16 KB MoveTo across gateway, coalescing on",
        bulk_on,
        "ms",
    );
    c.push_ours("coalescing-off perturbation", bulk_off - bulk_base, "ms");
    c.push_ours("coalescing speedup", bulk_off / bulk_on, "x");
    c.push_ours("frames coalesced, off", off_coalesced as f64, "frames");
    c.push_ours("frames coalesced, on", on_coalesced as f64, "frames");

    // A clean long-haul link: distance dominates everything.
    let clean = ClusterConfig::wan(LinkParams::T1).with_hosts(2, speed);
    let (wan_ms, _) = run_exchange(Cluster::new(clean), rounds);
    c.push_ours("exchange over clean T1 WAN (30 ms one way)", wan_ms, "ms");

    // The same link with 5% loss: the kernel's retransmission machinery
    // pays for every lost packet with a timeout.
    let lossy = ClusterConfig::wan(LinkParams::T1.with_loss(0.05)).with_hosts(2, speed);
    let (lossy_ms, lossy_cl) = run_exchange(Cluster::new(lossy), rounds);
    let ks: KernelStats = lossy_cl.kernel_stats(HostId(0));
    let ks1: KernelStats = lossy_cl.kernel_stats(HostId(1));
    c.push_ours("exchange over T1 WAN, 5% loss", lossy_ms, "ms");
    c.push_ours(
        "loss-driven retransmissions",
        (ks.retransmissions + ks1.retransmissions + ks1.replies_retransmitted) as f64,
        "packets",
    );

    c.note("gateway: store-and-forward host joining two 3 Mb segments, bounded 8-frame queue");
    c.note("coalescing: queued same-egress frames at a gateway share one 300 µs forwarding charge");
    c.note("bulk rows: 10 Mb ingress feeding a 3 Mb egress, 64-frame queue — chunks pile up at the gateway");
    c.note("WAN: full-duplex 1.544 Mb/s link, 30 ms propagation each way");
    c.note("no paper counterpart — the 1983 evaluation never leaves one segment");
    c
}
