//! §5.4: multi-process traffic — concurrent pairs, the collision-bug
//! degradation, offered load, and the server exchange ceiling.

use v_kernel::{Cluster, ClusterConfig, CpuSpeed};
use v_net::CollisionBug;

use crate::paper;
use crate::report::Comparison;

use super::table_5::measure_srr;

/// Exchanges per pair in the traffic experiments.
const N: u64 = 2000;

/// Reproduces the §5.4 observations.
pub fn multi_process_traffic() -> Comparison {
    let mut c = Comparison::new("Sec 5.4", "multi-process traffic, 8 MHz, 3 Mb Ethernet");

    // Offered load of one maximum-speed pair.
    let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
    let mut cl = Cluster::new(cfg);
    let one = v_workloads::multipair::run_pairs(&mut cl, 1, N, v_sim::SimDuration::ZERO);
    c.push(
        "one pair offered load",
        paper::PAIR_OFFERED_LOAD_BPS,
        one.offered_bits_per_sec,
        "b/s",
    );
    c.push("one pair exchange time", 3.18, one.mean_per_op_ms, "ms");

    // Two pairs, clean interfaces: minimal degradation.
    let cfg = ClusterConfig::three_mb().with_hosts(4, CpuSpeed::Mc68000At8MHz);
    let mut cl = Cluster::new(cfg);
    let clean =
        v_workloads::multipair::run_pairs(&mut cl, 2, N, v_sim::SimDuration::from_millis(1));
    c.push_ours(
        "two pairs exchange time (fixed interface)",
        clean.mean_per_op_ms,
        "ms",
    );

    // Two pairs with the collision-detection hardware bug.
    let mut cfg = ClusterConfig::three_mb().with_hosts(4, CpuSpeed::Mc68000At8MHz);
    cfg.collision_bug = Some(CollisionBug::PAPER_3MB);
    let mut cl = Cluster::new(cfg);
    let buggy =
        v_workloads::multipair::run_pairs(&mut cl, 2, N, v_sim::SimDuration::from_millis(1));
    c.push(
        "two pairs exchange time (buggy interface)",
        paper::MULTIPAIR_BUGGY_MS,
        buggy.mean_per_op_ms,
        "ms",
    );
    let corruption_rate = if buggy.frames == 0 {
        0.0
    } else {
        buggy.bug_corruptions as f64 / buggy.frames as f64
    };
    c.push(
        "bug corruption rate",
        1.0 / 2000.0,
        corruption_rate,
        "per packet",
    );
    c.push_ours(
        "retransmissions under the bug",
        buggy.retransmissions as f64,
        "count",
    );

    // Server-processor exchange ceiling (paper quotes the 10 MHz figure).
    let srr10 = measure_srr(CpuSpeed::Mc68000At10MHz, true);
    c.push(
        "server exchange ceiling (10 MHz)",
        paper::SERVER_EXCHANGE_CEILING,
        1000.0 / srr10.server_cpu_ms,
        "exchanges/s",
    );

    c.note("bug mode: deferred transmissions occasionally collide undetected and corrupt");
    c.note("every exchange still completes exactly once via timeout + retransmission");
    c.note("offered load counts payload bits; the paper's round 400 kb/s evidently includes");
    c.note("link framing (the raw arithmetic 2 x 64 B / 3.18 ms gives ~322 kb/s)");
    c
}
