//! Design-choice ablations the paper reports as single sentences:
//! IP encapsulation (§3), the process-level network server (§3),
//! the specialized page protocol (§3.4/§6.1), and streaming (§6.2).

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, Encapsulation, HostId};
use v_sim::SimDuration;
use v_workloads::echo::{EchoServer, Pinger};

use crate::paper;
use crate::report::Comparison;

use super::table_5::measure_srr;
use super::table_6_2::measure_seq;
use super::{run_client_server, N_EXCHANGES, N_PAGES};

/// §3: encapsulating interkernel packets in IP headers slows the basic
/// exchange by ~20 %.
pub fn ip_encapsulation() -> Comparison {
    let speed = CpuSpeed::Mc68000At8MHz;
    let mut c = Comparison::new("Sec 3 (IP)", "IP encapsulation of interkernel packets");

    let raw = measure_srr(speed, true);

    let mut cfg = ClusterConfig::three_mb().with_hosts(2, speed);
    cfg.protocol.encapsulation = Encapsulation::Ip;
    let (ip, _) = run_client_server(
        Cluster::new(cfg),
        HostId(1),
        HostId(0),
        |cl| cl.spawn(HostId(1), "echo", Box::new(EchoServer)),
        |server, rep| Box::new(Pinger::new(server, N_EXCHANGES, rep)),
    );

    c.push_ours("raw data-link exchange", raw.elapsed_ms, "ms");
    c.push_ours("IP-encapsulated exchange", ip.elapsed_ms, "ms");
    c.push(
        "IP overhead",
        paper::IP_ENCAP_OVERHEAD_FRACTION * 100.0,
        (ip.elapsed_ms / raw.elapsed_ms - 1.0) * 100.0,
        "%",
    );
    c.note("IP mode: +20 header bytes per packet plus header build/parse processor cost");
    c.note("paper: ~20% even without the IP checksum and with trivial routing");
    c
}

/// §3: routing remote sends through user-level network-server processes
/// instead of handling them in the kernel.
pub fn netserver_relay() -> Comparison {
    let speed = CpuSpeed::Mc68000At8MHz;
    let mut c = Comparison::new("Sec 3 (relay)", "process-level network server");
    let direct = measure_srr(speed, true);
    let relayed = v_baselines::relay::measure_relayed_exchange(speed, 500);
    c.push_ours("kernel-level remote exchange", direct.elapsed_ms, "ms");
    c.push_ours("relayed remote exchange", relayed, "ms");
    c.push(
        "slowdown factor",
        paper::NETSERVER_SLOWDOWN_FACTOR,
        relayed / direct.elapsed_ms,
        "x",
    );
    c.note("two extra local exchanges plus user-level packet copying per traversal");
    c.note("the per-traversal copying constant is fitted to the paper's reported 4x");
    c
}

/// §3.4/§6.1: V IPC page access vs a WFS-style specialized two-packet
/// protocol (the lower bound).
pub fn wfs_comparison() -> Comparison {
    let speed = CpuSpeed::Mc68000At10MHz;
    let mut c = Comparison::new("Sec 6.1 (WFS)", "V IPC vs specialized page protocol");
    let v = super::table_6_1::measure_page(
        speed,
        v_workloads::page::PageOp::Read,
        v_workloads::page::PageMode::Segment,
        true,
    );
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(2, speed));
    let (wfs_ms, st) = v_baselines::wfs::measure_wfs(&mut cl, true, 512, N_PAGES);
    assert_eq!(st.borrow().integrity_errors, 0);

    let model = v_kernel::CostModel::for_speed(speed);
    let net = v_net::NetParams::for_kind(v_net::NetworkKind::Experimental3Mb);
    let penalty = model.network_penalty(&net, 64).as_millis_f64()
        + model.network_penalty(&net, 576).as_millis_f64();

    c.push_ours("network penalty (64B + 576B)", penalty, "ms");
    c.push_ours("WFS-style page read", wfs_ms, "ms");
    c.push_ours("V IPC page read", v.elapsed_ms, "ms");
    c.push_ours("V IPC overhead vs specialized", v.elapsed_ms - wfs_ms, "ms");
    c.note("paper's claim: V IPC within ~1.5 ms of the network-penalty lower bound,");
    c.note("so specialized protocols have little room to improve on it");
    c
}

/// §6.2: streaming vs V request-response for sequential access.
pub fn streaming_comparison() -> Comparison {
    let mut c = Comparison::new("Sec 6.2", "streaming vs synchronous request-response");
    for disk in [10u64, 15, 20] {
        let v_ms = measure_seq(disk, SimDuration::ZERO);
        let mut cl =
            Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz));
        let (s_ms, st) = v_baselines::streaming::measure_streaming(
            &mut cl,
            N_PAGES as u16,
            SimDuration::from_millis(disk),
            SimDuration::ZERO,
        );
        assert_eq!(st.borrow().integrity_errors, 0);
        c.push_ours(
            format!("V request-response, disk {disk} ms"),
            v_ms,
            "ms/page",
        );
        c.push_ours(format!("streaming, disk {disk} ms"), s_ms, "ms/page");
        c.push(
            format!("streaming gain, disk {disk} ms"),
            paper::STREAMING_MAX_IMPROVEMENT * 100.0,
            (v_ms - s_ms) / v_ms * 100.0,
            "% (bound)",
        );
    }
    // The slow-reader case: 20 ms of application compute per page.
    let think = SimDuration::from_millis(20);
    let v_slow = measure_seq(10, think);
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz));
    let (s_slow, _) = v_baselines::streaming::measure_streaming(
        &mut cl,
        N_PAGES as u16,
        SimDuration::from_millis(10),
        think,
    );
    c.push_ours("V, slow reader (20 ms think)", v_slow, "ms/page");
    c.push_ours("streaming, slow reader", s_slow, "ms/page");
    c.push(
        "streaming gain, slow reader",
        20.0,
        (v_slow - s_slow) / v_slow * 100.0,
        "% (bound)",
    );
    c.note("paper: streaming is capped at ~15% (fast reader) / ~20% (slow reader),");
    c.note("while adding buffering copies and cache-consistency problems");
    c
}
