//! Design-choice ablations the paper reports as single sentences:
//! IP encapsulation (§3), the process-level network server (§3),
//! the specialized page protocol (§3.4/§6.1), and streaming (§6.2).

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, Encapsulation, HostId};
use v_sim::SimDuration;
use v_workloads::echo::{EchoServer, Pinger};

use crate::paper;
use crate::report::Comparison;

use super::table_5::measure_srr;
use super::table_6_2::measure_seq;
use super::{run_client_server, N_EXCHANGES, N_PAGES};

/// §3: encapsulating interkernel packets in IP headers slows the basic
/// exchange by ~20 %.
pub fn ip_encapsulation() -> Comparison {
    let speed = CpuSpeed::Mc68000At8MHz;
    let mut c = Comparison::new("Sec 3 (IP)", "IP encapsulation of interkernel packets");

    let raw = measure_srr(speed, true);

    let mut cfg = ClusterConfig::three_mb().with_hosts(2, speed);
    cfg.protocol.encapsulation = Encapsulation::Ip;
    let (ip, _) = run_client_server(
        Cluster::new(cfg),
        HostId(1),
        HostId(0),
        |cl| cl.spawn(HostId(1), "echo", Box::new(EchoServer)),
        |server, rep| Box::new(Pinger::new(server, N_EXCHANGES, rep)),
    );

    c.push_ours("raw data-link exchange", raw.elapsed_ms, "ms");
    c.push_ours("IP-encapsulated exchange", ip.elapsed_ms, "ms");
    c.push(
        "IP overhead",
        paper::IP_ENCAP_OVERHEAD_FRACTION * 100.0,
        (ip.elapsed_ms / raw.elapsed_ms - 1.0) * 100.0,
        "%",
    );
    c.note("IP mode: +20 header bytes per packet plus header build/parse processor cost");
    c.note("paper: ~20% even without the IP checksum and with trivial routing");
    c
}

/// §3: routing remote sends through user-level network-server processes
/// instead of handling them in the kernel.
pub fn netserver_relay() -> Comparison {
    let speed = CpuSpeed::Mc68000At8MHz;
    let mut c = Comparison::new("Sec 3 (relay)", "process-level network server");
    let direct = measure_srr(speed, true);
    let relayed = v_baselines::relay::measure_relayed_exchange(speed, 500);
    c.push_ours("kernel-level remote exchange", direct.elapsed_ms, "ms");
    c.push_ours("relayed remote exchange", relayed, "ms");
    c.push(
        "slowdown factor",
        paper::NETSERVER_SLOWDOWN_FACTOR,
        relayed / direct.elapsed_ms,
        "x",
    );
    c.note("two extra local exchanges plus user-level packet copying per traversal");
    c.note("the per-traversal copying constant is fitted to the paper's reported 4x");
    c
}

/// §3.4/§6.1: V IPC page access vs a WFS-style specialized two-packet
/// protocol (the lower bound).
pub fn wfs_comparison() -> Comparison {
    let speed = CpuSpeed::Mc68000At10MHz;
    let mut c = Comparison::new("Sec 6.1 (WFS)", "V IPC vs specialized page protocol");
    let v = super::table_6_1::measure_page(
        speed,
        v_workloads::page::PageOp::Read,
        v_workloads::page::PageMode::Segment,
        true,
    );
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(2, speed));
    let (wfs_ms, st) = v_baselines::wfs::measure_wfs(&mut cl, true, 512, N_PAGES);
    assert_eq!(st.borrow().integrity_errors, 0);

    let model = v_kernel::CostModel::for_speed(speed);
    let net = v_net::NetParams::for_kind(v_net::NetworkKind::Experimental3Mb);
    let penalty = model.network_penalty(&net, 64).as_millis_f64()
        + model.network_penalty(&net, 576).as_millis_f64();

    c.push_ours("network penalty (64B + 576B)", penalty, "ms");
    c.push_ours("WFS-style page read", wfs_ms, "ms");
    c.push_ours("V IPC page read", v.elapsed_ms, "ms");
    c.push_ours("V IPC overhead vs specialized", v.elapsed_ms - wfs_ms, "ms");
    c.note("paper's claim: V IPC within ~1.5 ms of the network-penalty lower bound,");
    c.note("so specialized protocols have little room to improve on it");
    c
}

/// §6.2: streaming vs V request-response for sequential access.
pub fn streaming_comparison() -> Comparison {
    let mut c = Comparison::new("Sec 6.2", "streaming vs synchronous request-response");
    for disk in [10u64, 15, 20] {
        let v_ms = measure_seq(disk, SimDuration::ZERO);
        let mut cl =
            Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz));
        let (s_ms, st) = v_baselines::streaming::measure_streaming(
            &mut cl,
            N_PAGES as u16,
            SimDuration::from_millis(disk),
            SimDuration::ZERO,
        );
        assert_eq!(st.borrow().integrity_errors, 0);
        c.push_ours(
            format!("V request-response, disk {disk} ms"),
            v_ms,
            "ms/page",
        );
        c.push_ours(format!("streaming, disk {disk} ms"), s_ms, "ms/page");
        c.push(
            format!("streaming gain, disk {disk} ms"),
            paper::STREAMING_MAX_IMPROVEMENT * 100.0,
            (v_ms - s_ms) / v_ms * 100.0,
            "% (bound)",
        );
    }
    // The slow-reader case: 20 ms of application compute per page.
    let think = SimDuration::from_millis(20);
    let v_slow = measure_seq(10, think);
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz));
    let (s_slow, _) = v_baselines::streaming::measure_streaming(
        &mut cl,
        N_PAGES as u16,
        SimDuration::from_millis(10),
        think,
    );
    c.push_ours("V, slow reader (20 ms think)", v_slow, "ms/page");
    c.push_ours("streaming, slow reader", s_slow, "ms/page");
    c.push(
        "streaming gain, slow reader",
        20.0,
        (v_slow - s_slow) / v_slow * 100.0,
        "% (bound)",
    );
    c.note("paper: streaming is capped at ~15% (fast reader) / ~20% (slow reader),");
    c.note("while adding buffering copies and cache-consistency problems");
    c
}

/// Protocol ablations: the §3.4 appended-segment optimization and the
/// alien reply cache, each switched off via its [`v_kernel::ProtocolConfig`]
/// toggle to quantify what the mechanism buys.
pub fn protocol_ablations() -> Comparison {
    let speed = CpuSpeed::Mc68000At10MHz;
    let mut c = Comparison::new(
        "Ablations",
        "appended segments and reply caching switched off, 10 MHz",
    );

    // Appended segments: a 512-byte page write is one two-packet
    // exchange with them, Send + MoveFrom + Reply without (the
    // unmodified Thoth-style kernel).
    let with_seg = super::table_6_1::measure_page(
        speed,
        v_workloads::page::PageOp::Write,
        v_workloads::page::PageMode::Segment,
        true,
    );
    // Thoth mode runs with `appended_segments = false` — the same
    // measurement Table 6-1 reports, reused here as the ablation's
    // other arm.
    let without_seg = super::table_6_1::measure_page(
        speed,
        v_workloads::page::PageOp::Write,
        v_workloads::page::PageMode::Thoth,
        true,
    );
    c.push_ours(
        "page write, appended segments on",
        with_seg.elapsed_ms,
        "ms",
    );
    c.push_ours(
        "page write, appended segments off",
        without_seg.elapsed_ms,
        "ms",
    );
    c.push(
        "appended-segment savings",
        paper::SEGMENT_SAVINGS,
        without_seg.elapsed_ms - with_seg.elapsed_ms,
        "ms",
    );

    // Reply caching: under loss, a cached reply answers a retransmitted
    // Send directly; without it (alien keep = 0) the exchange is
    // re-delivered and the receiver re-executes.
    let loss = v_net::FaultPlan::with_loss(0.05);
    let run = |caching: bool| {
        let mut cfg = ClusterConfig::three_mb().with_hosts(2, speed);
        cfg.faults = loss;
        cfg.protocol.reply_caching = caching;
        cfg.protocol.retransmit_timeout = SimDuration::from_millis(20);
        let mut cl = Cluster::new(cfg);
        let echo = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
        cl.run();
        let rep = v_workloads::measure::probe(Default::default());
        cl.spawn(
            HostId(0),
            "pinger",
            Box::new(Pinger::new(echo, N_EXCHANGES, rep.clone())),
        );
        cl.run();
        let r = rep.borrow().clone();
        assert!(r.clean(), "lossy exchange loop failed: {r:?}");
        (r.per_op_ms(), cl.kernel_stats(HostId(1)))
    };
    let (cached_ms, cached_ks) = run(true);
    let (uncached_ms, uncached_ks) = run(false);
    c.push_ours("exchange, 5% loss, reply cache on", cached_ms, "ms");
    c.push_ours("exchange, 5% loss, reply cache off", uncached_ms, "ms");
    c.push_ours(
        "cached replies retransmitted",
        cached_ks.replies_retransmitted as f64,
        "packets",
    );
    c.push_ours(
        "re-deliveries without the cache",
        uncached_ks
            .aliens_allocated
            .saturating_sub(cached_ks.aliens_allocated) as f64,
        "exchanges",
    );
    c.note("appended off: ProtocolConfig::appended_segments = false (Send carries no data)");
    c.note("cache off: ProtocolConfig::reply_caching = false (alien freed at reply; keep = 0)");
    c
}
