//! Table 6-3: program loading — a 64 KB read chunked into `MoveTo`s.

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_workloads::load::{LoadClient, LoadServer};

use crate::paper;
use crate::report::Comparison;

use super::{run_client_server, Measured};

/// Number of 64 KB reads per measurement.
const N_LOADS: u64 = 10;

/// Measures a 64 KB read with the given `MoveTo` transfer unit.
pub(crate) fn measure_load(cfg: ClusterConfig, unit: u32, remote: bool) -> Measured {
    let cl = Cluster::new(cfg);
    let server_host = HostId(if remote { 1 } else { 0 });
    let (m, _) = run_client_server(
        cl,
        server_host,
        HostId(0),
        |cl| {
            cl.spawn(
                server_host,
                "loadserver",
                Box::new(LoadServer::new(65536, unit, 0x42, Default::default())),
            )
        },
        |server, rep| Box::new(LoadClient::new(server, 65536, N_LOADS, 0x42, rep)),
    );
    m
}

/// Reproduces Table 6-3 (8 MHz, 3 Mb Ethernet): 64 KB reads vs transfer
/// unit.
pub fn program_loading() -> Comparison {
    let mut c = Comparison::new("Table 6-3", "64 KB read (program loading), 8 MHz");
    let cfg = || ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
    let mut remote64_ms = f64::NAN;
    for (unit, p_local, p_remote, p_client, p_server) in paper::TABLE_6_3 {
        let kb = unit / 1024;
        let local = measure_load(cfg(), unit, false);
        let remote = measure_load(cfg(), unit, true);
        if unit == 65536 {
            remote64_ms = remote.elapsed_ms;
        }
        c.push(
            format!("{kb} KB units, local"),
            p_local,
            local.elapsed_ms,
            "ms",
        );
        c.push(
            format!("{kb} KB units, remote"),
            p_remote,
            remote.elapsed_ms,
            "ms",
        );
        c.push(
            format!("{kb} KB units, client CPU"),
            p_client,
            remote.client_cpu_ms,
            "ms",
        );
        c.push(
            format!("{kb} KB units, server CPU"),
            p_server,
            remote.server_cpu_ms,
            "ms",
        );
    }
    // Paper: large-unit remote loading runs at ~192 KB/s.
    c.push(
        "data rate, 64 KB units",
        192.0,
        64.0 / (remote64_ms / 1000.0),
        "KB/s",
    );
    c.note("network penalty is not defined for multi-packet transfers (paper footnote)");
    c.note("client = requesting workstation; server = the host running the MoveTo loop");
    c
}
