//! Table 6-2: sequential page access against a read-ahead file server.

use v_kernel::{CpuSpeed, HostId};
use v_sim::SimDuration;
use v_workloads::seq::{SeqReadClient, SeqReadServer};

use crate::paper;
use crate::report::Comparison;

use super::{pair_3mb, run_client_server, N_PAGES};

/// Measures sequential reading with the given server-side disk latency.
pub(crate) fn measure_seq(disk_ms: u64, think: SimDuration) -> f64 {
    let cl = pair_3mb(CpuSpeed::Mc68000At10MHz);
    let (m, _) = run_client_server(
        cl,
        HostId(1),
        HostId(0),
        |cl| {
            cl.spawn(
                HostId(1),
                "seqserver",
                Box::new(SeqReadServer::new(
                    512,
                    SimDuration::from_millis(disk_ms),
                    0x11,
                    Default::default(),
                )),
            )
        },
        |server, rep| Box::new(SeqReadClient::new(server, 512, N_PAGES, think, rep)),
    );
    m.elapsed_ms
}

/// Reproduces Table 6-2: elapsed time per page vs disk latency.
pub fn sequential_access() -> Comparison {
    let mut c = Comparison::new(
        "Table 6-2",
        "sequential access, 512 B pages, read-ahead server",
    );
    for (disk, paper_ms) in paper::TABLE_6_2 {
        let ms = measure_seq(disk, SimDuration::ZERO);
        c.push(format!("disk latency {disk} ms"), paper_ms, ms, "ms/page");
        c.push(
            format!("overhead over disk at {disk} ms"),
            paper_ms - disk as f64,
            ms - disk as f64,
            "ms",
        );
    }
    c.note("server interposes the disk latency between reply and next receive (read-ahead)");
    c.note("paper: within 10-15% of the disk latency floor => streaming gains are capped there");
    c
}
