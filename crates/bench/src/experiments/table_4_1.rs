//! Table 4-1: the network penalty on the 3 Mb Ethernet.

use v_kernel::CpuSpeed;
use v_workloads::penalty::measure_penalty;

use crate::paper;
use crate::report::Comparison;

use super::pair_3mb;

/// Measures the network penalty for the paper's datagram sizes on both
/// processor grades, by interrupt-level raw-datagram ping-pong.
pub fn network_penalty() -> Comparison {
    network_penalty_with_rounds(300)
}

/// [`network_penalty`] with a configurable round count; the `--smoke` CI
/// job runs it with a handful of rounds to exercise the pipeline cheaply
/// (timings then carry sub-round noise, so only the full count is
/// comparable to the paper).
pub fn network_penalty_with_rounds(rounds: u64) -> Comparison {
    let mut c = Comparison::new(
        "Table 4-1",
        "3 Mb Ethernet network penalty (interrupt-level ping-pong, /2)",
    );
    for (bytes, paper8, paper10) in paper::TABLE_4_1 {
        let mut cl = pair_3mb(CpuSpeed::Mc68000At8MHz);
        let (ms8, st) = measure_penalty(&mut cl, bytes, rounds);
        assert_eq!(st.borrow().integrity_errors, 0);
        c.push(format!("{bytes} bytes, 8 MHz"), paper8, ms8, "ms");

        let mut cl = pair_3mb(CpuSpeed::Mc68000At10MHz);
        let (ms10, _) = measure_penalty(&mut cl, bytes, rounds);
        c.push(format!("{bytes} bytes, 10 MHz"), paper10, ms10, "ms");
    }
    c.note("paper fit 8 MHz: P(n) = 0.0064 n + 0.390; 10 MHz: 0.0054 n + 0.251");
    c.note("measured by the same procedure as the paper: n bytes there and back, total/2");
    c
}
