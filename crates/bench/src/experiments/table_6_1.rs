//! Table 6-1: random page-level access, plus the §6.1 segment-vs-Thoth
//! ablation.

use v_kernel::{Cluster, ClusterConfig, CostModel, CpuSpeed, HostId};
use v_net::NetParams;
use v_workloads::page::{PageClient, PageMode, PageOp, PageServer};

use crate::paper;
use crate::report::Comparison;

use super::{pair_3mb, run_client_server, Measured, N_PAGES};

/// Measures a page read/write loop.
pub(crate) fn measure_page(speed: CpuSpeed, op: PageOp, mode: PageMode, remote: bool) -> Measured {
    let cl = if mode == PageMode::Thoth {
        // The unmodified kernel: no appended segments on Send.
        let mut cfg = ClusterConfig::three_mb().with_hosts(2, speed);
        cfg.protocol.appended_segments = false;
        Cluster::new(cfg)
    } else {
        pair_3mb(speed)
    };
    let server_host = HostId(if remote { 1 } else { 0 });
    let (m, _) = run_client_server(
        cl,
        server_host,
        HostId(0),
        |cl| {
            cl.spawn(
                server_host,
                "pageserver",
                Box::new(PageServer::new(mode, 512, 0x7E, Default::default())),
            )
        },
        |server, rep| Box::new(PageClient::new(server, op, 512, N_PAGES, 0x7E, rep)),
    );
    m
}

/// Reproduces Table 6-1 (10 MHz, 512-byte pages) and the Thoth-mode
/// comparison of §6.1.
pub fn page_access() -> Comparison {
    let speed = CpuSpeed::Mc68000At10MHz;
    let mut c = Comparison::new("Table 6-1", "random page-level access, 512 B, 10 MHz");
    let model = CostModel::for_speed(speed);
    let net = NetParams::for_kind(v_net::NetworkKind::Experimental3Mb);
    // Request datagram (64 B) + reply-with-page datagram (576 B).
    let pen = model.network_penalty(&net, 64).as_millis_f64()
        + model.network_penalty(&net, 576).as_millis_f64();

    let mut seg_write_ms = f64::NAN;
    for (row, op) in paper::TABLE_6_1.iter().zip([PageOp::Read, PageOp::Write]) {
        let name = row.op;
        let local = measure_page(speed, op, PageMode::Segment, false);
        let remote = measure_page(speed, op, PageMode::Segment, true);
        if op == PageOp::Write {
            seg_write_ms = remote.elapsed_ms;
        }
        c.push(format!("{name} local"), row.local, local.elapsed_ms, "ms");
        c.push(
            format!("{name} remote"),
            row.remote,
            remote.elapsed_ms,
            "ms",
        );
        c.push(format!("{name} penalty"), row.penalty, pen, "ms");
        c.push(
            format!("{name} client CPU"),
            row.client,
            remote.client_cpu_ms,
            "ms",
        );
        c.push(
            format!("{name} server CPU"),
            row.server,
            remote.server_cpu_ms,
            "ms",
        );
    }

    // §6.1: the basic Thoth way (Send-Receive-MoveFrom-Reply for writes).
    let thoth_write = measure_page(speed, PageOp::Write, PageMode::Thoth, true);
    c.push(
        "Thoth-mode page write (MoveFrom)",
        paper::THOTH_WRITE_512,
        thoth_write.elapsed_ms,
        "ms",
    );
    c.push(
        "segment mechanism savings per write",
        paper::SEGMENT_SAVINGS,
        thoth_write.elapsed_ms - seg_write_ms,
        "ms",
    );
    c.note("read: Send/Receive/ReplyWithSegment; write: Send+seg/ReceiveWithSegment/Reply");
    c.note("Thoth mode runs with appended segments disabled (the unmodified kernel)");
    c
}
