//! File-server request pipelining: sequential server vs a
//! receptionist/worker team under multi-client burst fan-in.
//!
//! §7 budgets one server's capacity as pure processor time and Table
//! 6-3 shows per-client degradation as contention grows; both assume a
//! server that does one thing at a time. The `Forward`-based server
//! team (`v_fs::team`) overlaps one request's disk wait with the next
//! request's receive and file-system processing, so the ceiling moves
//! from *sum of service stages* toward *the slowest stage* — the disk,
//! which the shared `DiskModel` now reports directly (queue depth, busy
//! time) instead of leaving utilization to be inferred.
//!
//! Procedure: K diskless clients (one per host) each open a private
//! 8-block file on one server and read pages in a tight loop — the
//! Table 6-1 remote-read shape, fanned in. The same burst runs against
//! the sequential server (`workers = 1`) and a 4-worker team; read-ahead
//! is off in both so the contrast isolates pipelining. A side pair of
//! single-client runs pins the `workers = 1` team-builder path
//! bit-identical to a directly spawned pre-team `FileServer`.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::{FsCall, FsClient, FsClientReport};
use v_fs::disk::{DiskModel, DiskStats};
use v_fs::server::{FileServer, FileServerConfig};
use v_fs::store::BlockStore;
use v_fs::team::spawn_file_server;
use v_fs::BLOCK_SIZE;
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId, Pid};
use v_sim::SimDuration;

use crate::report::Comparison;

use super::N_PAGES;

/// Workers in the pipelined team.
const WORKERS: usize = 4;
/// Blocks per client file.
const FILE_BLOCKS: usize = 8;

/// One burst run's measurements.
struct Burst {
    /// Mean ms per completed script step (open + reads) per client.
    per_read_ms: f64,
    /// Served load over the burst.
    req_per_s: f64,
    /// The server disk's counters (aggregated across arms by
    /// [`DiskStats::absorb`]).
    disk: DiskStats,
    /// Disk utilization over the burst.
    disk_util: f64,
    /// Per-arm utilization over the burst (one entry on the default
    /// single-arm unit; the Datapath table sweeps wider stripes).
    arm_util: Vec<f64>,
}

fn burst_cluster(clients: usize) -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(clients + 1, CpuSpeed::Mc68000At10MHz))
}

fn burst_store(clients: usize) -> BlockStore {
    let mut store = BlockStore::new();
    for i in 0..clients {
        store
            .create_with(&format!("vol{i}"), &vec![0x7E; FILE_BLOCKS * BLOCK_SIZE])
            .expect("fresh store");
    }
    store
}

fn burst_cfg(workers: usize) -> FileServerConfig {
    FileServerConfig {
        disk: DiskModel::fixed(SimDuration::from_millis(15)),
        // Isolate pipelining: no speculative disk traffic.
        read_ahead: false,
        register: None,
        workers,
        ..FileServerConfig::default()
    }
}

fn client_script(file: &str, reads: u64) -> Vec<FsCall> {
    let mut script = vec![FsCall::Open(file.into())];
    for j in 0..reads {
        script.push(FsCall::ReadExpect {
            block: (j % FILE_BLOCKS as u64) as u32,
            count: BLOCK_SIZE as u32,
            expect: 0x7E,
        });
    }
    script
}

/// Spawns `clients` simultaneous scripted clients against `server` and
/// runs the burst to completion; returns the per-client reports and the
/// burst's elapsed seconds.
fn run_clients(
    cl: &mut Cluster,
    server: Pid,
    clients: usize,
    reads: u64,
) -> (Vec<FsClientReport>, f64) {
    let t0 = cl.now();
    let reports: Vec<_> = (0..clients)
        .map(|i| {
            let rep = Rc::new(RefCell::new(FsClientReport::default()));
            cl.spawn(
                HostId(1 + i),
                "burst-client",
                Box::new(FsClient::new(
                    server,
                    client_script(&format!("vol{i}"), reads),
                    rep.clone(),
                )),
            );
            rep
        })
        .collect();
    cl.run();
    let elapsed_s = cl.now().since(t0).as_secs_f64();
    let reports: Vec<FsClientReport> = reports.iter().map(|r| r.borrow().clone()).collect();
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.done && r.errors == 0 && r.integrity_errors == 0,
            "burst client {i} failed: {r:?}"
        );
    }
    (reports, elapsed_s)
}

/// Runs one burst: `clients` × (`reads` page reads) against a server
/// with `workers` workers.
fn run_burst(workers: usize, clients: usize, reads: u64) -> Burst {
    let mut cl = burst_cluster(clients);
    let team = spawn_file_server(&mut cl, HostId(0), burst_cfg(workers), burst_store(clients));
    cl.run(); // team settled: every process blocked receiving
    let (reports, elapsed_s) = run_clients(&mut cl, team.server, clients, reads);
    let total_ops: u64 = reports.iter().map(|r| r.completed).sum();
    let per_read_ms = reports.iter().map(|r| r.elapsed_ms).sum::<f64>() / total_ops as f64;
    let disk = team.disk.borrow().stats();
    let elapsed = SimDuration::from_millis_f64(elapsed_s * 1000.0);
    let arm_util = team
        .disk
        .borrow()
        .per_arm_stats()
        .iter()
        .map(|s| s.utilization(elapsed))
        .collect();
    Burst {
        per_read_ms,
        req_per_s: total_ops as f64 / elapsed_s,
        disk,
        disk_util: disk.utilization(elapsed),
        arm_util,
    }
}

/// Single-client run against a *directly spawned* pre-team
/// `FileServer::new` — the pre-refactor construction path, kept as the
/// bit-identity reference for the `workers = 1` team builder.
fn run_direct_sequential(reads: u64) -> f64 {
    let mut cl = burst_cluster(1);
    let server = cl.spawn(
        HostId(0),
        "fileserver",
        Box::new(FileServer::new(burst_cfg(1), burst_store(1))),
    );
    cl.run();
    let (reports, _) = run_clients(&mut cl, server, 1, reads);
    reports[0].elapsed_ms / reports[0].completed as f64
}

/// The pipelining table with the full round count.
pub fn pipeline_contention() -> Comparison {
    pipeline_with_rounds(N_PAGES.min(60))
}

/// [`pipeline_contention`] with a configurable reads-per-client count;
/// the CI smoke job runs a handful to keep the pipeline check cheap.
pub fn pipeline_with_rounds(reads: u64) -> Comparison {
    let mut c = Comparison::new(
        "Pipeline",
        "file-server team pipelining under burst fan-in, 512 B reads, 10 MHz",
    );

    // --- per-read latency vs burst width, sequential vs team ------------
    let mut seq_at = Vec::new();
    let mut pipe_at = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let seq = run_burst(1, clients, reads);
        let pipe = run_burst(WORKERS, clients, reads);
        c.push_ours(
            format!("burst of {clients}: sequential per read"),
            seq.per_read_ms,
            "ms",
        );
        c.push_ours(
            format!("burst of {clients}: pipelined per read ({WORKERS} workers)"),
            pipe.per_read_ms,
            "ms",
        );
        seq_at.push(seq);
        pipe_at.push(pipe);
    }
    let (seq8, pipe8) = (&seq_at[3], &pipe_at[3]);
    c.push_ours(
        "burst of 4: pipelining speedup",
        seq_at[2].per_read_ms / pipe_at[2].per_read_ms,
        "x",
    );

    // --- the disk as the queueing center --------------------------------
    c.push_ours(
        "burst of 8: sequential disk utilization",
        seq8.disk_util * 100.0,
        "%",
    );
    c.push_ours(
        "burst of 8: pipelined disk utilization",
        pipe8.disk_util * 100.0,
        "%",
    );
    c.push_ours(
        "burst of 8: pipelined max disk queue depth",
        pipe8.disk.max_queue_depth as f64,
        "req",
    );
    for (k, util) in pipe8.arm_util.iter().enumerate() {
        c.push_ours(
            format!("burst of 8: pipelined disk arm {k} utilization"),
            util * 100.0,
            "%",
        );
    }
    c.push_ours(
        "burst of 8: sequential max disk queue depth",
        seq8.disk.max_queue_depth as f64,
        "req",
    );
    c.push_ours(
        "burst of 8: sequential served load",
        seq8.req_per_s,
        "req/s",
    );
    c.push_ours(
        "burst of 8: pipelined served load",
        pipe8.req_per_s,
        "req/s",
    );

    // --- the §7 capacity estimate, redone for a pipelined server --------
    // Sequential ceiling: one request's whole service path at a time.
    let seq_service_ms = seq_at[0].per_read_ms;
    // Pipelined ceiling: the slowest stage — the disk's mean service.
    let disk_service_ms = if pipe8.disk.requests == 0 {
        f64::NAN
    } else {
        pipe8.disk.busy.as_millis_f64() / pipe8.disk.requests as f64
    };
    c.push_ours(
        "capacity estimate, sequential (1000/service)",
        1000.0 / seq_service_ms,
        "req/s",
    );
    c.push_ours(
        "capacity estimate, pipelined (1000/disk service)",
        1000.0 / disk_service_ms,
        "req/s",
    );

    // --- bit-identity of the workers=1 path ------------------------------
    let direct = run_direct_sequential(reads);
    // The burst-of-1 sequential run above *is* a workers=1 team-builder
    // run (deterministic simulator): reuse it rather than re-simulate.
    let via_team = seq_at[0].per_read_ms;
    c.push_ours("single client, direct sequential spawn", direct, "ms");
    c.push_ours("single client, workers=1 team builder", via_team, "ms");
    // Pinned to exactly 0.0 by the calibration suite: the team refactor
    // must not move the paper-shaped sequential server by one event.
    c.push_ours(
        "workers=1 perturbation of direct spawn",
        via_team - direct,
        "ms",
    );

    c.note(format!(
        "burst: K clients, one per host, each opening a private {FILE_BLOCKS}-block file and \
         reading {reads} pages (Table 6-1 remote-read shape, fanned in)"
    ));
    c.note("15 ms fixed-latency disk shared by the team (single-arm); read-ahead off in both arms");
    c.note("per read includes the amortized open; identical procedure in both arms");
    c.note("sequential serializes receive+fs CPU+disk+reply; the team overlaps all but the disk");
    c.note(
        "the pipelined capacity ceiling is per disk arm: a striped unit divides the disk \
         service across arms and the ceiling scales with arm count until the wire takes \
         over (measured in the Datapath table)",
    );
    c
}
