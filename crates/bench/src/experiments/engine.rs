//! Simulation-engine throughput under boot-storm scale.
//!
//! Unlike every other experiment here, this one has no paper column:
//! it measures the *reproduction itself* — how fast the deterministic
//! engine chews through the diskless boot storm
//! ([`v_workloads::boot`]), the heaviest workload in the repository.
//! N clients concurrently broadcast-resolve their file-service shard
//! and page a program image across a multi-segment mesh; the engine
//! rows report simulated events dispatched, wall-clock time and
//! events/second for N ∈ {64, 256, 1000}.
//!
//! Every row is measurement-only (`push_ours`), so the CI deviation
//! gate treats the emitted `BENCH_engine.json` as a must-complete
//! smoke artifact rather than a fidelity comparison — wall-clock
//! throughput varies by machine, and correctness (every client loads,
//! zero errors) is asserted here instead of gated on deviation.
//!
//! Reference point: before the arena-backed kernel tables and batched
//! frame delivery landed, the pre-refactor engine measured 1.16 M ev/s
//! at N=256 and took 12.1 s of wall-clock for the N=1000 storm on the
//! development machine; the refactored engine measured 2.98 M ev/s
//! (2.6×) and 2.3 s on the same machine. Absolute numbers are
//! machine-dependent — the ratio is the durable claim.

use std::time::Instant;

use v_workloads::boot::{run_boot_storm, BootStormConfig};

use crate::report::Comparison;

/// Boot-storm sizes of the full experiment.
const SIZES: [usize; 3] = [64, 256, 1000];

/// The full engine-throughput experiment (N ∈ {64, 256, 1000}).
pub fn engine_throughput() -> Comparison {
    engine_with_sizes(&SIZES)
}

/// Engine throughput at caller-chosen storm sizes (the smoke run uses
/// one small N so CI stays fast).
pub fn engine_with_sizes(sizes: &[usize]) -> Comparison {
    let mut c = Comparison::new(
        "engine",
        "Simulation-engine throughput: diskless boot storm",
    );
    for &n in sizes {
        let cfg = BootStormConfig::new(n);
        let wall = Instant::now();
        let r = run_boot_storm(&cfg);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            r.loaded as usize, n,
            "boot storm must load every client: {r:?}"
        );
        assert_eq!(
            r.errors + r.integrity_errors + r.resolve_failures,
            0,
            "boot storm must be error-free: {r:?}"
        );
        let events_per_sec = r.events_dispatched as f64 / (wall_ms / 1e3);
        c.push_ours(format!("N={n}: clients booted"), r.loaded as f64, "hosts");
        c.push_ours(format!("N={n}: shards"), r.shards as f64, "servers");
        c.push_ours(format!("N={n}: simulated time"), r.sim_ms, "ms");
        c.push_ours(
            format!("N={n}: events dispatched"),
            r.events_dispatched as f64,
            "events",
        );
        c.push_ours(format!("N={n}: wall-clock"), wall_ms, "ms");
        c.push_ours(format!("N={n}: engine throughput"), events_per_sec, "ev/s");
    }
    c.note(
        "measurement-only experiment: no paper column; gates that the boot storm completes \
         error-free at every N and surfaces engine throughput (dispatched events / wall-clock)",
    );
    c.note(
        "storm shape: one file-service shard per ~64 clients, one 3 Mb segment per shard behind \
         a hub gateway, replicated read-only image catalogue, clients powered on in 64-host \
         waves, 8 KiB image via broadcast GetPid + open/read/MoveTo page-in",
    );
    c
}
