//! Heat-driven shard rebalancing under a skewed workload.
//!
//! The paper's file service is a fixed placement: a file lives where
//! its server runs, forever. Section 7's capacity analysis shows what
//! that costs when demand concentrates — one server saturates while
//! its peers idle. This experiment puts the live-migration machinery
//! ([`v_fs::migrate`]) and the heat-driven policy ([`v_fs::rebalance`])
//! against exactly that regime:
//!
//! * **skewed mix** — four shard services, but every hot file is born
//!   on shard 0 and four clients stream them flat out. *Static* serves
//!   the whole mix from one queue; *rebalanced* lets the policy
//!   process sample per-file heat and walk files to idle shards while
//!   the clients keep reading.
//! * **convergence** — per-arm disk utilization before/after: the
//!   static arm pins one disk and idles three, the rebalanced arm
//!   spreads the load until the shards sit inside the policy band.
//! * **exactly-once accounting** — every client op completes exactly
//!   once across the moves; the clients' stale-owner corrections
//!   reconcile against the servers' forward counters to the op.
//!
//! The off arm is not merely close to today's sharded deployment — it
//! **is** that deployment: standing up migration-capable services and
//! overlay-carrying clients without starting the rebalancer must
//! reproduce the plain `spawn_shard_server` timeline to the bit. The
//! calibration suite pins that row to exactly 0.0.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::{FsCall, FsClientReport};
use v_fs::disk::DiskModel;
use v_fs::shard::{spawn_shard_server, ShardMap, ShardedFsClient};
use v_fs::store::BlockStore;
use v_fs::{
    spawn_rebalancer, spawn_shard_service, FileServerConfig, RebalancerConfig, ShardHandle,
    ShardOverlay, BLOCK_SIZE,
};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::{SimDuration, SimTime};

use crate::report::Comparison;

use super::N_PAGES;

/// Shards (and hot files, and streaming clients).
const SHARDS: usize = 4;
/// Blocks per hot file (also the migration copy length).
const FILE_BLOCKS: usize = 4;

/// How one arm deploys the shard fleet.
#[derive(Clone, Copy, PartialEq)]
enum Arm {
    /// Today's sharded deployment: `spawn_shard_server`, plain
    /// `ShardedFsClient`, no overlay, no agents.
    Baseline,
    /// Migration-capable services + overlay clients, rebalancer never
    /// started. Must be bit-identical to `Baseline`.
    Off,
    /// The full stack with the policy process running.
    On,
}

/// One arm's outcome across the whole skewed mix.
struct SkewOutcome {
    /// Mean ms per script op across the streaming clients.
    per_op_ms: f64,
    /// Total completed ops over the slowest client's elapsed time.
    served_req_s: f64,
    /// Per-shard disk utilization over the run, in percent.
    util: Vec<f64>,
    /// Files walked to another shard (ledger, On arm only).
    moves: u64,
    /// Sampling rounds until the shards sat inside the band.
    converged_after: Option<u64>,
    /// Σ clients' stale-owner corrections.
    stale_forwards: u64,
    /// Σ servers' forwarded stale requests.
    moved_forwards: u64,
    /// Σ clients' drain-refused writes that were re-issued.
    write_retries: u64,
}

/// Runs `reads` page reads per client over [`SHARDS`] hot files all
/// born on shard 0, under `arm`'s deployment. Every client opens its
/// file once and streams — the open-once pattern program loading
/// produces, and the one that makes owner caches go stale when a file
/// moves underneath them.
fn run_skew(arm: Arm, reads: u64) -> SkewOutcome {
    let speed = CpuSpeed::Mc68000At10MHz;
    // Hosts 0..SHARDS: services; next SHARDS: clients; last: rebalancer.
    // Every arm builds the identical cluster so the Off pin compares
    // like with like.
    let mut cl = Cluster::new(ClusterConfig::three_mb().with_hosts(2 * SHARDS + 1, speed));
    let map = ShardMap::new(SHARDS);

    let mut services = Vec::new();
    let mut servers = Vec::new();
    let mut disks = Vec::new();
    for shard in 0..SHARDS {
        let mut store = BlockStore::with_id_base(map.id_base(shard));
        if shard == 0 {
            for f in 0..SHARDS {
                store
                    .create_with(
                        &map.name_for_shard(0, &format!("hot{f}")),
                        &vec![0xA0 + f as u8; FILE_BLOCKS * BLOCK_SIZE],
                    )
                    .expect("fresh store");
            }
        }
        let fs_cfg = FileServerConfig {
            disk: DiskModel::fixed(SimDuration::from_millis(1)),
            ..FileServerConfig::default()
        };
        if arm == Arm::Baseline {
            servers.push(spawn_shard_server(
                &mut cl,
                HostId(shard),
                &map,
                shard,
                fs_cfg,
                store,
            ));
        } else {
            let svc = spawn_shard_service(&mut cl, HostId(shard), &map, shard, fs_cfg, store);
            servers.push(svc.server);
            disks.push(svc.disk.clone());
            services.push(svc);
        }
    }
    cl.run(); // every service blocked in Receive

    let overlay: Rc<RefCell<ShardOverlay>> = Default::default();
    let mut reports = Vec::new();
    let mut script_len = 0u64;
    for client in 0..SHARDS {
        let mut script = vec![FsCall::Open(map.name_for_shard(0, &format!("hot{client}")))];
        for j in 0..reads {
            script.push(FsCall::ReadExpect {
                block: (j % FILE_BLOCKS as u64) as u32,
                count: BLOCK_SIZE as u32,
                expect: 0xA0 + client as u8,
            });
        }
        // Close with a write+read pair: the file must take writes
        // wherever the policy left it (and the drain's retry-after
        // path gets exercised when a write lands mid-move).
        script.push(FsCall::WriteFill {
            block: 1,
            count: BLOCK_SIZE as u32,
            fill: 0x50 + client as u8,
        });
        script.push(FsCall::ReadExpect {
            block: 1,
            count: BLOCK_SIZE as u32,
            expect: 0x50 + client as u8,
        });
        script_len = script.len() as u64;
        let rep = Rc::new(RefCell::new(FsClientReport::default()));
        let mut c = ShardedFsClient::with_servers(servers.clone(), script, rep.clone());
        if arm != Arm::Baseline {
            c = c.with_overlay(overlay.clone());
        }
        cl.spawn(HostId(SHARDS + client), "skew-client", Box::new(c));
        reports.push(rep);
    }
    let ledger = (arm == Arm::On).then(|| {
        spawn_rebalancer(
            &mut cl,
            HostId(2 * SHARDS),
            RebalancerConfig {
                interval: SimDuration::from_millis(30),
                min_score: 1.0,
                ..RebalancerConfig::default()
            },
            services.iter().map(ShardHandle::from).collect(),
            overlay.clone(),
        )
    });
    cl.run();

    let mut total_ms = 0.0f64;
    let mut wall_ms = 0.0f64;
    let mut stale = 0;
    let mut retries = 0;
    for (i, rep) in reports.iter().enumerate() {
        let r = rep.borrow().clone();
        assert!(
            r.done && r.errors == 0 && r.integrity_errors == 0 && r.completed == script_len,
            "skew client {i} failed: {r:?}"
        );
        total_ms += r.elapsed_ms;
        wall_ms = wall_ms.max(r.elapsed_ms);
        stale += r.stale_owner_forwards;
        retries += r.write_retries;
    }
    let per_op_ms = total_ms / (SHARDS as f64 * script_len as f64);
    let served_req_s = (SHARDS as f64 * script_len as f64) / (wall_ms / 1000.0);
    let elapsed = cl.now().since(SimTime::ZERO);
    let util = disks
        .iter()
        .map(|d| d.borrow().utilization(elapsed) * 100.0)
        .collect();
    let led = ledger.map(|l| l.borrow().clone()).unwrap_or_default();
    SkewOutcome {
        per_op_ms,
        served_req_s,
        util,
        moves: led.completed,
        converged_after: led.converged_after,
        stale_forwards: stale,
        moved_forwards: services
            .iter()
            .map(|s| s.stats.borrow().moved_forwards)
            .sum(),
        write_retries: retries,
    }
}

/// Max−min spread of per-shard disk utilization, in percentage points.
fn util_spread(util: &[f64]) -> f64 {
    let max = util.iter().cloned().fold(f64::MIN, f64::max);
    let min = util.iter().cloned().fold(f64::MAX, f64::min);
    max - min
}

/// The rebalancing table with the full round count.
pub fn rebalance() -> Comparison {
    rebalance_with_rounds(N_PAGES.min(160))
}

/// [`rebalance`] with a configurable per-client read count; the CI
/// smoke job runs a short stream to keep the check cheap (still long
/// enough for the policy to sample, move, and converge mid-run).
pub fn rebalance_with_rounds(reads: u64) -> Comparison {
    let mut c = Comparison::new(
        "Rebalance",
        "heat-driven shard rebalancing with live migration, 4 shards, 10 MHz",
    );

    let base = run_skew(Arm::Baseline, reads);
    let off = run_skew(Arm::Off, reads);
    let on = run_skew(Arm::On, reads);

    c.push_ours("skewed mix: per op, static", off.per_op_ms, "ms");
    c.push_ours("skewed mix: per op, rebalanced", on.per_op_ms, "ms");
    c.push_ours("skewed mix: served load, static", off.served_req_s, "req/s");
    c.push_ours(
        "skewed mix: served load, rebalanced",
        on.served_req_s,
        "req/s",
    );
    c.push_ours(
        "rebalancing served-load gain",
        on.served_req_s / off.served_req_s,
        "x",
    );

    // Pinned to exactly 0.0 by the calibration suite: an idle policy
    // is not a near miss of today's deployment, it IS that deployment.
    c.push_ours(
        "rebalancer-off perturbation",
        off.per_op_ms - base.per_op_ms,
        "ms",
    );

    c.push_ours(
        "disk utilization spread, static",
        util_spread(&off.util),
        "pp",
    );
    c.push_ours(
        "disk utilization spread, rebalanced",
        util_spread(&on.util),
        "pp",
    );
    c.push_ours("files migrated", on.moves as f64, "files");
    c.push_ours(
        "rounds to convergence",
        on.converged_after.map_or(-1.0, |r| r as f64),
        "rounds",
    );
    c.push_ours(
        "stale-owner corrections (clients)",
        on.stale_forwards as f64,
        "ops",
    );
    c.push_ours(
        "forwarded stale requests (servers)",
        on.moved_forwards as f64,
        "ops",
    );
    c.push_ours("drain write retries", on.write_retries as f64, "ops");

    c.note("4 shard services, 1 ms disks; every hot file born on shard 0, one streaming client per file");
    c.note(
        "clients open once and stream — owner caches go stale when a file moves underneath them",
    );
    c.note("policy: 30 ms sampling, decay 0.5, band 1.25x mean, <= 2 moves/round; copy is 4 ordinary block reads");
    c.note("off arm = migration-capable services with the rebalancer never started (pinned 0.0 vs spawn_shard_server)");
    c.note("no paper counterpart — the 1983 file service is a fixed placement (its S7 capacity ceiling is the motivation)");
    c
}
