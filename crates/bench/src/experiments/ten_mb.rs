//! §8: preliminary measurements on the 10 Mb standard Ethernet
//! (8 MHz processors, learned logical-host addressing).

use v_kernel::{ClusterConfig, CpuSpeed, HostId};
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::page::{PageClient, PageMode, PageOp, PageServer};

use crate::paper;
use crate::report::Comparison;

use super::table_6_3::measure_load;
use super::{pair_10mb, run_client_server, N_EXCHANGES, N_PAGES};

/// Reproduces the three §8 figures.
pub fn ten_mb_ethernet() -> Comparison {
    let speed = CpuSpeed::Mc68000At8MHz;
    let mut c = Comparison::new("Sec 8", "10 Mb Ethernet, 8 MHz processors");

    // Remote message exchange.
    let (srr, _) = run_client_server(
        pair_10mb(speed),
        HostId(1),
        HostId(0),
        |cl| cl.spawn(HostId(1), "echo", Box::new(EchoServer)),
        |server, rep| Box::new(Pinger::new(server, N_EXCHANGES, rep)),
    );
    c.push(
        "remote exchange",
        paper::TEN_MB_SRR_MS,
        srr.elapsed_ms,
        "ms",
    );

    // Remote page read.
    let (page, _) = run_client_server(
        pair_10mb(speed),
        HostId(1),
        HostId(0),
        |cl| {
            cl.spawn(
                HostId(1),
                "pageserver",
                Box::new(PageServer::new(
                    PageMode::Segment,
                    512,
                    0x7E,
                    Default::default(),
                )),
            )
        },
        |server, rep| {
            Box::new(PageClient::new(
                server,
                PageOp::Read,
                512,
                N_PAGES,
                0x7E,
                rep,
            ))
        },
    );
    c.push(
        "page read",
        paper::TEN_MB_PAGE_READ_MS,
        page.elapsed_ms,
        "ms",
    );

    // 64 KB load with 16 KB transfer units.
    let cfg = ClusterConfig::ten_mb().with_hosts(2, speed);
    let load = measure_load(cfg, 16384, true);
    c.push(
        "64 KB load, 16 KB units",
        paper::TEN_MB_LOAD_64K_MS,
        load.elapsed_ms,
        "ms",
    );

    c.note("uses learned (table + broadcast fallback) logical-host addressing, as the paper");
    c.note("the paper could not separate network-speed from interface improvements; we model");
    c.note("only the wire-speed change, so expect a few percent pessimism vs the paper");
    c
}
