//! Sharded file-service placement on a routed mesh.
//!
//! The paper's Table 6-1 measures page access with client and server on
//! one shared segment; cluster deployments of diskless clients put
//! several segments behind gateways and have to decide **where the file
//! service lives**. Two questions, two halves:
//!
//! 1. What does a gateway hop cost a page read? The Table 6-1 remote
//!    512-byte read rerun on a 3-segment line mesh with the server 0, 1
//!    and 2 hops away. The same-segment case must be **bit-identical**
//!    to the single-segment baseline — placing a mesh around the
//!    segment must not perturb the paper's numbers — and latency must
//!    be strictly ordered same-segment < 1 hop < 2 hops.
//! 2. Does partitioned placement pay? Three diskless clients (one per
//!    segment) each work a file pinned to one shard. *Centralized*
//!    places all three shard servers on segment 0, so two clients cross
//!    gateways for every page; *partitioned* places one shard per
//!    segment, so every client reads locally. Same protocol, same
//!    servers, same scripts — only placement moves.

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::{FsCall, FsClientReport};
use v_fs::disk::DiskModel;
use v_fs::shard::{spawn_shard_server, ShardMap, ShardedFsClient};
use v_fs::store::BlockStore;
use v_fs::{FileServerConfig, BLOCK_SIZE};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_net::MeshConfig;
use v_sim::SimDuration;

use crate::paper;
use crate::report::Comparison;

use super::{pair_3mb, run_page_reads, N_PAGES};

/// Mean ms per 512-byte page read with the server `hops` gateways away
/// on a 3-segment line mesh (client always on segment 0).
fn mesh_page_read(speed: CpuSpeed, hops: usize, rounds: u64) -> f64 {
    let cl = Cluster::new(
        ClusterConfig::mesh(MeshConfig::line(3))
            .with_host_on(speed, 0)
            .with_host_on(speed, hops),
    );
    run_page_reads(cl, rounds)
}

/// Runs the 3-client / 3-shard placement workload. `partitioned` puts
/// shard `i`'s server on segment `i`; centralized stacks all three on
/// segment 0. Returns (mean ms per page read across clients, gateway
/// frames forwarded).
fn run_placement(speed: CpuSpeed, reads_per_client: u64, partitioned: bool) -> (f64, u64) {
    let map = ShardMap::new(3);
    // Hosts 0–2: shard servers; hosts 3–5: one client per segment.
    let mut cfg = ClusterConfig::mesh(MeshConfig::line(3));
    for shard in 0..3 {
        cfg = cfg.with_host_on(speed, if partitioned { shard } else { 0 });
    }
    for seg in 0..3 {
        cfg = cfg.with_host_on(speed, seg);
    }
    let mut cl = Cluster::new(cfg);

    let mut servers = Vec::new();
    for shard in 0..3 {
        let mut store = BlockStore::with_id_base(map.id_base(shard));
        store
            .create_with(
                &map.name_for_shard(shard, "vol"),
                &vec![0x7E; 16 * BLOCK_SIZE],
            )
            .expect("fresh store");
        let fs_cfg = FileServerConfig {
            disk: DiskModel::fixed(SimDuration::from_millis(1)),
            ..FileServerConfig::default()
        };
        servers.push(spawn_shard_server(
            &mut cl,
            HostId(shard),
            &map,
            shard,
            fs_cfg,
            store,
        ));
    }
    cl.run(); // every server blocked in Receive

    let mut reports = Vec::new();
    for client in 0..3usize {
        // Client `i` works the file pinned to shard `i` — the placement
        // a directory partition by client home volume produces.
        let mut script = vec![FsCall::Open(map.name_for_shard(client, "vol"))];
        for j in 0..reads_per_client {
            script.push(FsCall::ReadExpect {
                block: (j % 16) as u32,
                count: BLOCK_SIZE as u32,
                expect: 0x7E,
            });
        }
        let rep = Rc::new(RefCell::new(FsClientReport::default()));
        cl.spawn(
            HostId(3 + client),
            "shard-client",
            Box::new(ShardedFsClient::with_servers(
                servers.clone(),
                script,
                rep.clone(),
            )),
        );
        reports.push(rep);
    }
    cl.run();

    let mut total_ms = 0.0;
    for (i, rep) in reports.iter().enumerate() {
        let r = rep.borrow().clone();
        assert!(
            r.done && r.errors == 0 && r.integrity_errors == 0,
            "client {i} failed: {r:?}"
        );
        total_ms += r.elapsed_ms;
    }
    let per_read = total_ms / (3.0 * reads_per_client as f64);
    let forwarded = cl.gateway_stats_total().map_or(0, |g| g.forwarded);
    (per_read, forwarded)
}

/// The shard-placement table with the full round count.
pub fn shard_placement() -> Comparison {
    shard_with_rounds(N_PAGES)
}

/// [`shard_placement`] with a configurable round count; the CI smoke
/// job runs a handful of rounds to keep the pipeline check cheap.
pub fn shard_with_rounds(rounds: u64) -> Comparison {
    let speed = CpuSpeed::Mc68000At10MHz;
    let mut c = Comparison::new(
        "Shard",
        "sharded file-service placement on a 3-segment routed mesh, 10 MHz",
    );

    // --- page-read latency by hop count --------------------------------
    let baseline = run_page_reads(pair_3mb(speed), rounds);
    let same = mesh_page_read(speed, 0, rounds);
    let one = mesh_page_read(speed, 1, rounds);
    let two = mesh_page_read(speed, 2, rounds);
    c.push(
        "page read 512 B, same segment (mesh)",
        paper::TABLE_6_1[0].remote,
        same,
        "ms",
    );
    c.push_ours("page read 512 B, 1 hop", one, "ms");
    c.push_ours("page read 512 B, 2 hops", two, "ms");
    c.push_ours(
        "single-segment baseline (Table 6-1 procedure)",
        baseline,
        "ms",
    );
    // Pinned to exactly 0.0 by the calibration suite: the mesh fabric
    // must not perturb the paper's single-segment numbers.
    c.push_ours("mesh perturbation of baseline", same - baseline, "ms");
    c.push_ours("per-hop cost, first hop", one - same, "ms");
    c.push_ours("per-hop cost, second hop", two - one, "ms");

    // --- centralized vs partitioned placement --------------------------
    let fs_rounds = rounds.min(120);
    let (central_ms, central_fwd) = run_placement(speed, fs_rounds, false);
    let (part_ms, part_fwd) = run_placement(speed, fs_rounds, true);
    c.push_ours("centralized placement: page read", central_ms, "ms");
    c.push_ours("partitioned placement: page read", part_ms, "ms");
    c.push_ours("partitioned speedup", central_ms / part_ms, "x");
    c.push_ours(
        "centralized gateway frames forwarded",
        central_fwd as f64,
        "frames",
    );
    c.push_ours(
        "partitioned gateway frames forwarded",
        part_fwd as f64,
        "frames",
    );

    c.note("mesh: 3 × 3 Mb segments in a line, two gateways, 8-frame queues, 300 µs/frame");
    c.note("hop rows rerun the Table 6-1 remote 512 B read with the server 0/1/2 hops away");
    c.note("placement: 3 shard file servers + 3 clients (one per segment), 1 ms disk");
    c.note("partitioned = shard per segment; centralized = all shards on segment 0");
    c
}
