//! `v-bench` — regenerate the paper's tables and figures.
//!
//! ```text
//! v-bench [all|4-1|5-1|5-2|5-4|6-1|6-2|6-3|7|8|ip|relay|wfs|streaming|wan|shard|rebalance|failover|pipeline|datapath|cachemix|ablate|engine]...
//!         [--json DIR] [--check PCT]
//! v-bench --smoke [--json DIR] [--check PCT]
//! ```
//!
//! `--json DIR` additionally writes each experiment's comparison as
//! `DIR/BENCH_<id>.json` (machine-readable: id, title, rows with
//! paper/ours/deviation, notes) so CI can diff reproduced values against
//! the paper across commits.
//!
//! `--check PCT` exits nonzero if any produced table's worst deviation
//! from the paper exceeds `PCT` percent — the CI regression gate.
//!
//! `--smoke` runs Table 4-1, the WAN table, the shard-placement table,
//! the rebalancing table, the replica-failover table, the server-team
//! pipelining table, a
//! small boot-storm engine-throughput run and the cache-mix table with
//! tiny round counts: a
//! cheap end-to-end exercise of the experiment pipeline for CI, not a
//! measurement. It cannot be combined with experiment ids, but accepts
//! `--json` / `--check`.

use std::path::PathBuf;

use v_bench::experiments as exp;
use v_bench::report::Comparison;
use v_kernel::CpuSpeed;

fn comparison_for(id: &str) -> Option<Comparison> {
    Some(match id {
        "4-1" => exp::network_penalty(),
        "5-1" => exp::kernel_performance(CpuSpeed::Mc68000At8MHz),
        "5-2" => exp::kernel_performance(CpuSpeed::Mc68000At10MHz),
        "5-4" => exp::multi_process_traffic(),
        "6-1" => exp::page_access(),
        "6-2" => exp::sequential_access(),
        "6-3" => exp::program_loading(),
        "7" => exp::file_server_capacity(),
        "8" => exp::ten_mb_ethernet(),
        "ip" => exp::ip_encapsulation(),
        "relay" => exp::netserver_relay(),
        "wfs" => exp::wfs_comparison(),
        "streaming" => exp::streaming_comparison(),
        "wan" => exp::wan_topologies(),
        "shard" => exp::shard_placement(),
        "rebalance" => exp::rebalance(),
        "failover" => exp::failover(),
        "pipeline" => exp::pipeline_contention(),
        "datapath" => exp::datapath(),
        "cachemix" => exp::cachemix(),
        "ablate" => exp::protocol_ablations(),
        "engine" => exp::engine_throughput(),
        other => {
            eprintln!("unknown experiment: {other}");
            return None;
        }
    })
}

const ALL: [&str; 22] = [
    "4-1",
    "5-1",
    "5-2",
    "5-4",
    "6-1",
    "6-2",
    "6-3",
    "7",
    "8",
    "ip",
    "relay",
    "wfs",
    "streaming",
    "wan",
    "shard",
    "rebalance",
    "failover",
    "pipeline",
    "datapath",
    "cachemix",
    "ablate",
    "engine",
];

/// Parsed command line.
struct Opts {
    smoke: bool,
    /// Directory to write `BENCH_<id>.json` files into.
    json_dir: Option<PathBuf>,
    /// Worst-deviation gate, as a fraction (e.g. 0.5 for `--check 50`).
    check: Option<f64>,
    ids: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        smoke: false,
        json_dir: None,
        check: None,
        ids: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--json" => {
                let dir = it.next().ok_or("--json requires a directory argument")?;
                opts.json_dir = Some(PathBuf::from(dir));
            }
            "--check" => {
                let pct: f64 = it
                    .next()
                    .ok_or("--check requires a percentage argument")?
                    .parse()
                    .map_err(|e| format!("--check: {e}"))?;
                if !pct.is_finite() || pct <= 0.0 {
                    return Err("--check requires a positive percentage".into());
                }
                opts.check = Some(pct / 100.0);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => opts.ids.push(other.to_string()),
        }
    }
    if opts.smoke && !opts.ids.is_empty() {
        return Err(
            "--smoke runs only the fixed smoke check and cannot be combined with experiment ids"
                .into(),
        );
    }
    Ok(opts)
}

/// Prints a comparison and applies the `--json` / `--check` side
/// channels. Returns false if the deviation gate tripped.
fn process(c: &Comparison, file_id: &str, opts: &Opts) -> bool {
    println!("{c}");
    if let Some(dir) = &opts.json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return false;
        }
        let path = dir.join(format!("BENCH_{file_id}.json"));
        if let Err(e) = std::fs::write(&path, c.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return false;
        }
    }
    if let Some(limit) = opts.check {
        let worst = c.worst_deviation();
        if worst > limit {
            eprintln!(
                "DEVIATION GATE: {} worst deviation {:.1}% exceeds --check {:.1}%",
                c.id,
                worst * 100.0,
                limit * 100.0
            );
            return false;
        }
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    if opts.smoke {
        let c = exp::network_penalty_with_rounds(5);
        let mut ok = process(&c, "4-1", &opts);
        let w = exp::wan_with_rounds(60);
        ok &= process(&w, "wan", &opts);
        let s = exp::shard_with_rounds(40);
        ok &= process(&s, "shard", &opts);
        let rb = exp::rebalance_with_rounds(80);
        ok &= process(&rb, "rebalance", &opts);
        let f = exp::failover_with_rounds(40);
        ok &= process(&f, "failover", &opts);
        let p = exp::pipeline_with_rounds(8);
        ok &= process(&p, "pipeline", &opts);
        let d = exp::datapath_with_rounds(8);
        ok &= process(&d, "datapath", &opts);
        let e = exp::engine_with_sizes(&[48]);
        ok &= process(&e, "engine", &opts);
        let cm = exp::cachemix_with_rounds(40);
        ok &= process(&cm, "cachemix", &opts);
        if !ok {
            std::process::exit(2);
        }
        println!(
            "smoke OK: Table 4-1, WAN, shard, rebalance, failover, server-team \
             pipelines, the data-path table, the boot-storm engine gate and the \
             cache-mix table ran end to end (tiny rounds, not a measurement)"
        );
        return;
    }

    let ids: Vec<&str> = if opts.ids.is_empty() || opts.ids.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        opts.ids.iter().map(|s| s.as_str()).collect()
    };
    let mut ok = true;
    for id in ids {
        match comparison_for(id) {
            Some(c) => ok &= process(&c, id, &opts),
            None => ok = false,
        }
    }
    if !ok {
        std::process::exit(2);
    }
}
