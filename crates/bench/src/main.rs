//! `v-bench` — regenerate the paper's tables and figures.
//!
//! ```text
//! v-bench [all|4-1|5-1|5-2|5-4|6-1|6-2|6-3|7|8|ip|relay|wfs|streaming]...
//! v-bench --smoke
//! ```
//!
//! `--smoke` runs Table 4-1 with a tiny round count: a cheap end-to-end
//! exercise of the experiment pipeline for CI, not a measurement. It
//! cannot be combined with experiment ids.

use v_bench::experiments as exp;
use v_kernel::CpuSpeed;

fn run(id: &str) -> bool {
    let c = match id {
        "4-1" => exp::network_penalty(),
        "5-1" => exp::kernel_performance(CpuSpeed::Mc68000At8MHz),
        "5-2" => exp::kernel_performance(CpuSpeed::Mc68000At10MHz),
        "5-4" => exp::multi_process_traffic(),
        "6-1" => exp::page_access(),
        "6-2" => exp::sequential_access(),
        "6-3" => exp::program_loading(),
        "7" => exp::file_server_capacity(),
        "8" => exp::ten_mb_ethernet(),
        "ip" => exp::ip_encapsulation(),
        "relay" => exp::netserver_relay(),
        "wfs" => exp::wfs_comparison(),
        "streaming" => exp::streaming_comparison(),
        other => {
            eprintln!("unknown experiment: {other}");
            return false;
        }
    };
    println!("{c}");
    true
}

const ALL: [&str; 13] = [
    "4-1",
    "5-1",
    "5-2",
    "5-4",
    "6-1",
    "6-2",
    "6-3",
    "7",
    "8",
    "ip",
    "relay",
    "wfs",
    "streaming",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        if args.len() > 1 {
            eprintln!("--smoke runs only the fixed smoke check and cannot be combined with experiment ids");
            std::process::exit(2);
        }
        let c = exp::network_penalty_with_rounds(5);
        println!("{c}");
        println!("smoke OK: Table 4-1 pipeline ran end to end (5 rounds, not a measurement)");
        return;
    }
    let mut ok = true;
    if args.is_empty() || args.iter().any(|a| a == "all") {
        for id in ALL {
            ok &= run(id);
        }
    } else {
        for a in &args {
            ok &= run(a);
        }
    }
    if !ok {
        std::process::exit(2);
    }
}
