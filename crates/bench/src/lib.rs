//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment in [`experiments`] builds a fresh simulated cluster,
//! runs the paper's workload, and returns a [`report::Comparison`] whose
//! rows pair the paper's published value with the reproduction's measured
//! value. The `v-bench` binary prints them; `tests/calibration.rs` pins
//! them with tolerances so the cost model cannot silently drift.

pub mod experiments;
pub mod paper;
pub mod report;
