//! The paper's published numbers, transcribed for side-by-side output.
//!
//! All times in milliseconds. Source: Cheriton & Zwaenepoel, SOSP 1983,
//! Tables 4-1, 5-1, 5-2, 6-1, 6-2, 6-3 and §§5.4, 7, 8.

/// Table 4-1 — 3 Mb network penalty: (bytes, 8 MHz ms, 10 MHz ms).
pub const TABLE_4_1: [(usize, f64, f64); 5] = [
    (64, 0.80, 0.65),
    (128, 1.20, 0.96),
    (256, 2.00, 1.62),
    (512, 3.65, 3.00),
    (1024, 6.95, 5.83),
];

/// Linear fit of the 8 MHz penalty: `P(n) = A·n + B`.
pub const PENALTY_FIT_8MHZ: (f64, f64) = (0.0064, 0.390);
/// Linear fit of the 10 MHz penalty.
pub const PENALTY_FIT_10MHZ: (f64, f64) = (0.0054, 0.251);

/// One row of Tables 5-1 / 5-2.
#[derive(Debug, Clone, Copy)]
pub struct KernelPerfRow {
    /// Operation name.
    pub op: &'static str,
    /// Elapsed ms, local execution.
    pub local: f64,
    /// Elapsed ms, remote execution (0 = not measured).
    pub remote: f64,
    /// Network penalty ms attributed by the paper.
    pub penalty: f64,
    /// Client processor ms.
    pub client: f64,
    /// Server processor ms.
    pub server: f64,
}

/// Table 5-1 — kernel performance, 8 MHz, 3 Mb Ethernet.
pub const TABLE_5_1: [KernelPerfRow; 4] = [
    KernelPerfRow {
        op: "GetTime",
        local: 0.07,
        remote: 0.0,
        penalty: 0.0,
        client: 0.0,
        server: 0.0,
    },
    KernelPerfRow {
        op: "Send-Receive-Reply",
        local: 1.00,
        remote: 3.18,
        penalty: 1.60,
        client: 1.79,
        server: 2.30,
    },
    KernelPerfRow {
        op: "MoveFrom 1024B",
        local: 1.26,
        remote: 9.03,
        penalty: 8.15,
        client: 3.76,
        server: 5.69,
    },
    KernelPerfRow {
        op: "MoveTo 1024B",
        local: 1.26,
        remote: 9.05,
        penalty: 8.15,
        client: 3.59,
        server: 5.87,
    },
];

/// Table 5-2 — kernel performance, 10 MHz, 3 Mb Ethernet.
pub const TABLE_5_2: [KernelPerfRow; 4] = [
    KernelPerfRow {
        op: "GetTime",
        local: 0.06,
        remote: 0.0,
        penalty: 0.0,
        client: 0.0,
        server: 0.0,
    },
    KernelPerfRow {
        op: "Send-Receive-Reply",
        local: 0.77,
        remote: 2.54,
        penalty: 1.30,
        client: 1.44,
        server: 1.79,
    },
    KernelPerfRow {
        op: "MoveFrom 1024B",
        local: 0.95,
        remote: 8.00,
        penalty: 6.77,
        client: 3.32,
        server: 4.78,
    },
    KernelPerfRow {
        op: "MoveTo 1024B",
        local: 0.95,
        remote: 8.00,
        penalty: 6.77,
        client: 3.17,
        server: 4.95,
    },
];

/// Table 6-1 — 512-byte page access, 10 MHz: page read then page write.
pub const TABLE_6_1: [KernelPerfRow; 2] = [
    KernelPerfRow {
        op: "page read",
        local: 1.31,
        remote: 5.56,
        penalty: 3.89,
        client: 2.50,
        server: 3.28,
    },
    KernelPerfRow {
        op: "page write",
        local: 1.31,
        remote: 5.60,
        penalty: 3.89,
        client: 2.58,
        server: 3.32,
    },
];

/// §6.1: a 512-byte Thoth-style write (Send-Receive-MoveFrom-Reply).
pub const THOTH_WRITE_512: f64 = 8.1;
/// §6.1: the savings the segment mechanism buys per page operation.
pub const SEGMENT_SAVINGS: f64 = 3.5;

/// Table 6-2 — sequential access: (disk latency ms, elapsed ms/page).
pub const TABLE_6_2: [(u64, f64); 3] = [(10, 12.02), (15, 17.13), (20, 22.22)];

/// Table 6-3 — 64 KB read: (transfer unit bytes, local ms, remote ms,
/// client CPU ms, server CPU ms).
pub const TABLE_6_3: [(u32, f64, f64, f64, f64); 4] = [
    (1024, 71.7, 518.3, 207.1, 297.9),
    (4096, 62.5, 368.4, 176.1, 225.2),
    (16384, 60.2, 344.6, 170.0, 216.9),
    (65536, 59.7, 335.4, 168.1, 212.7),
];

/// §5.4 — two concurrent pairs with the buggy interface: exchange time.
pub const MULTIPAIR_BUGGY_MS: f64 = 3.4;
/// §5.4 — offered load of one maximum-speed pair (bits/second).
pub const PAIR_OFFERED_LOAD_BPS: f64 = 400_000.0;
/// §5.4 — server-processor-limited exchange ceiling (exchanges/second).
pub const SERVER_EXCHANGE_CEILING: f64 = 558.0;

/// §7 — estimated processor cost of a page request (ms: 3.5 file system
/// + 3.3 kernel).
pub const FS_PAGE_REQUEST_CPU_MS: f64 = 7.0;
/// §7 — estimated cost of an average 64 KB program load (ms).
pub const FS_PROGRAM_LOAD_CPU_MS: f64 = 300.0;
/// §7 — average request cost under the 90/10 mix (ms).
pub const FS_MIX_AVG_CPU_MS: f64 = 36.0;
/// §7 — requests/second one file server sustains.
pub const FS_REQUESTS_PER_SEC: f64 = 28.0;
/// §7 — workstations one file server supports satisfactorily.
pub const FS_WORKSTATIONS: f64 = 10.0;

/// §8 — 10 Mb Ethernet, 8 MHz processors: remote exchange ms.
pub const TEN_MB_SRR_MS: f64 = 2.71;
/// §8 — page read ms.
pub const TEN_MB_PAGE_READ_MS: f64 = 5.72;
/// §8 — 64 KB load with 16 KB transfer units, ms.
pub const TEN_MB_LOAD_64K_MS: f64 = 255.0;

/// §3 — IP encapsulation increased the basic exchange time by ~20 %.
pub const IP_ENCAP_OVERHEAD_FRACTION: f64 = 0.20;
/// §3 — a process-level network server multiplied exchange time by ~4.
pub const NETSERVER_SLOWDOWN_FACTOR: f64 = 4.0;

/// §6.2 — streaming could improve sequential access by at most ~15 %.
pub const STREAMING_MAX_IMPROVEMENT: f64 = 0.15;
