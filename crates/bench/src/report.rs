//! Paper-vs-measured comparison tables.

use std::fmt;

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct Row {
    /// What is being compared (e.g. "Send-Receive-Reply remote").
    pub metric: String,
    /// The paper's published value (`None` for quantities the paper does
    /// not report, e.g. multi-packet penalties).
    pub paper: Option<f64>,
    /// The reproduction's measured value.
    pub ours: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl Row {
    /// Builds a compared row.
    pub fn new(metric: impl Into<String>, paper: f64, ours: f64, unit: &'static str) -> Row {
        Row {
            metric: metric.into(),
            paper: Some(paper),
            ours,
            unit,
        }
    }

    /// Builds a measurement-only row.
    pub fn ours_only(metric: impl Into<String>, ours: f64, unit: &'static str) -> Row {
        Row {
            metric: metric.into(),
            paper: None,
            ours,
            unit,
        }
    }

    /// Relative deviation from the paper value, if comparable.
    pub fn deviation(&self) -> Option<f64> {
        let p = self.paper?;
        if p == 0.0 {
            return None;
        }
        Some((self.ours - p) / p)
    }
}

/// A titled comparison between a paper table and the reproduction.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Experiment id, e.g. "Table 5-1".
    pub id: String,
    /// Descriptive title.
    pub title: String,
    /// Compared rows.
    pub rows: Vec<Row>,
    /// Free-form notes (substitutions, interpretation caveats).
    pub notes: Vec<String>,
}

impl Comparison {
    /// Creates an empty comparison.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Comparison {
        Comparison {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a compared row.
    pub fn push(&mut self, metric: impl Into<String>, paper: f64, ours: f64, unit: &'static str) {
        self.rows.push(Row::new(metric, paper, ours, unit));
    }

    /// Adds a measurement-only row.
    pub fn push_ours(&mut self, metric: impl Into<String>, ours: f64, unit: &'static str) {
        self.rows.push(Row::ours_only(metric, ours, unit));
    }

    /// Adds a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Largest absolute relative deviation across comparable rows.
    pub fn worst_deviation(&self) -> f64 {
        self.rows
            .iter()
            .filter_map(|r| r.deviation())
            .map(f64::abs)
            .fold(0.0, f64::max)
    }

    /// Looks up a row's measured value by metric name.
    ///
    /// # Panics
    ///
    /// Panics if no row has that metric (a test-harness usage error).
    pub fn get(&self, metric: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.metric == metric)
            .unwrap_or_else(|| panic!("no row named {metric:?} in {}", self.id))
            .ours
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(
            f,
            "{:<44} {:>10} {:>10} {:>8}  unit",
            "metric", "paper", "ours", "delta"
        )?;
        for r in &self.rows {
            let paper = match r.paper {
                Some(p) => format!("{p:.2}"),
                None => "-".to_string(),
            };
            let delta = match r.deviation() {
                Some(d) => format!("{:+.1}%", d * 100.0),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "{:<44} {:>10} {:>10.2} {:>8}  {}",
                r.metric, paper, r.ours, delta, r.unit
            )?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_math() {
        let r = Row::new("x", 2.0, 2.2, "ms");
        assert!((r.deviation().unwrap() - 0.1).abs() < 1e-9);
        assert_eq!(Row::ours_only("y", 1.0, "ms").deviation(), None);
    }

    #[test]
    fn worst_deviation_and_get() {
        let mut c = Comparison::new("T", "test");
        c.push("a", 1.0, 1.05, "ms");
        c.push("b", 2.0, 1.6, "ms");
        c.push_ours("c", 9.0, "ms");
        assert!((c.worst_deviation() - 0.2).abs() < 1e-9);
        assert_eq!(c.get("c"), 9.0);
    }

    #[test]
    fn renders_without_panicking() {
        let mut c = Comparison::new("Table X", "demo");
        c.push("metric", 1.0, 1.1, "ms");
        c.note("a note");
        let s = c.to_string();
        assert!(s.contains("Table X"));
        assert!(s.contains("+10.0%"));
        assert!(s.contains("a note"));
    }

    #[test]
    #[should_panic(expected = "no row named")]
    fn get_missing_row_panics() {
        Comparison::new("T", "t").get("missing");
    }
}
