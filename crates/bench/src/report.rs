//! Paper-vs-measured comparison tables.

use std::fmt;

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct Row {
    /// What is being compared (e.g. "Send-Receive-Reply remote").
    pub metric: String,
    /// The paper's published value (`None` for quantities the paper does
    /// not report, e.g. multi-packet penalties).
    pub paper: Option<f64>,
    /// The reproduction's measured value.
    pub ours: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl Row {
    /// Builds a compared row.
    pub fn new(metric: impl Into<String>, paper: f64, ours: f64, unit: &'static str) -> Row {
        Row {
            metric: metric.into(),
            paper: Some(paper),
            ours,
            unit,
        }
    }

    /// Builds a measurement-only row.
    pub fn ours_only(metric: impl Into<String>, ours: f64, unit: &'static str) -> Row {
        Row {
            metric: metric.into(),
            paper: None,
            ours,
            unit,
        }
    }

    /// Relative deviation from the paper value, if comparable.
    pub fn deviation(&self) -> Option<f64> {
        let p = self.paper?;
        if p == 0.0 {
            return None;
        }
        Some((self.ours - p) / p)
    }
}

/// A titled comparison between a paper table and the reproduction.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Experiment id, e.g. "Table 5-1".
    pub id: String,
    /// Descriptive title.
    pub title: String,
    /// Compared rows.
    pub rows: Vec<Row>,
    /// Free-form notes (substitutions, interpretation caveats).
    pub notes: Vec<String>,
}

impl Comparison {
    /// Creates an empty comparison.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Comparison {
        Comparison {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a compared row.
    pub fn push(&mut self, metric: impl Into<String>, paper: f64, ours: f64, unit: &'static str) {
        self.rows.push(Row::new(metric, paper, ours, unit));
    }

    /// Adds a measurement-only row.
    pub fn push_ours(&mut self, metric: impl Into<String>, ours: f64, unit: &'static str) {
        self.rows.push(Row::ours_only(metric, ours, unit));
    }

    /// Adds a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Largest absolute relative deviation across comparable rows.
    pub fn worst_deviation(&self) -> f64 {
        self.rows
            .iter()
            .filter_map(|r| r.deviation())
            .map(f64::abs)
            .fold(0.0, f64::max)
    }

    /// Looks up a row's measured value by metric name. `None` when no
    /// row carries that metric — callers decide whether that is a test
    /// failure or a recoverable miss; a renamed metric must never be
    /// able to abort the whole bench binary.
    pub fn get(&self, metric: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.metric == metric)
            .map(|r| r.ours)
    }

    /// Serializes the comparison as a JSON object (id, title, rows with
    /// paper/ours/deviation, notes, worst deviation) for machine
    /// consumption — CI diffs these across commits.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!(
            "  \"worst_deviation\": {},\n",
            json_num(self.worst_deviation())
        ));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"metric\": {}, \"paper\": {}, \"ours\": {}, \"deviation\": {}, \"unit\": {}}}{sep}\n",
                json_str(&r.metric),
                r.paper.map_or("null".to_string(), json_num),
                json_num(r.ours),
                r.deviation().map_or("null".to_string(), json_num),
                json_str(r.unit),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with the escapes our ids/titles/notes can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite values print plainly; non-finite become null
/// (JSON has no NaN/Infinity).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(
            f,
            "{:<44} {:>10} {:>10} {:>8}  unit",
            "metric", "paper", "ours", "delta"
        )?;
        for r in &self.rows {
            let paper = match r.paper {
                Some(p) => format!("{p:.2}"),
                None => "-".to_string(),
            };
            let delta = match r.deviation() {
                Some(d) => format!("{:+.1}%", d * 100.0),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "{:<44} {:>10} {:>10.2} {:>8}  {}",
                r.metric, paper, r.ours, delta, r.unit
            )?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_math() {
        let r = Row::new("x", 2.0, 2.2, "ms");
        assert!((r.deviation().unwrap() - 0.1).abs() < 1e-9);
        assert_eq!(Row::ours_only("y", 1.0, "ms").deviation(), None);
    }

    #[test]
    fn worst_deviation_and_get() {
        let mut c = Comparison::new("T", "test");
        c.push("a", 1.0, 1.05, "ms");
        c.push("b", 2.0, 1.6, "ms");
        c.push_ours("c", 9.0, "ms");
        assert!((c.worst_deviation() - 0.2).abs() < 1e-9);
        assert_eq!(c.get("c"), Some(9.0));
    }

    #[test]
    fn renders_without_panicking() {
        let mut c = Comparison::new("Table X", "demo");
        c.push("metric", 1.0, 1.1, "ms");
        c.note("a note");
        let s = c.to_string();
        assert!(s.contains("Table X"));
        assert!(s.contains("+10.0%"));
        assert!(s.contains("a note"));
    }

    #[test]
    fn get_missing_row_is_none() {
        assert_eq!(Comparison::new("T", "t").get("missing"), None);
    }

    #[test]
    fn json_shape() {
        let mut c = Comparison::new("Table X", "a \"quoted\" demo");
        c.push("metric one", 1.0, 1.1, "ms");
        c.push_ours("extra", 9.0, "KB/s");
        c.note("line\nbreak");
        let j = c.to_json();
        assert!(j.contains("\"id\": \"Table X\""));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"paper\": 1, \"ours\": 1.1"));
        assert!(j.contains("\"paper\": null"));
        assert!(j.contains("\"deviation\": null"));
        assert!(j.contains("\\nbreak"));
        assert!(j.contains("\"worst_deviation\":"));
        // Balanced braces/brackets: a cheap structural sanity check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.matches(open).count(),
                j.matches(close).count(),
                "unbalanced {open}{close} in {j}"
            );
        }
    }

    #[test]
    fn json_non_finite_is_null() {
        let mut c = Comparison::new("T", "t");
        c.push("x", 0.0, f64::NAN, "ms");
        let j = c.to_json();
        assert!(j.contains("\"ours\": null"));
        assert!(!j.contains("NaN"));
    }
}
