//! V-System: re-exports of all reproduction crates.
pub use v_baselines as baselines;
pub use v_bench as bench;
pub use v_fs as fs;
pub use v_kernel as kernel;
pub use v_net as net;
pub use v_sim as sim;
pub use v_wire as wire;
pub use v_workloads as workloads;
