//! §7 live: one file server, a growing crowd of diskless workstations
//! running the 90 % page-read / 10 % program-load mix. Watch response
//! times stay flat to ~10 workstations and degrade past saturation.
//!
//! Run with: `cargo run --release --example multi_client_fileserver`

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::SimDuration;
use v_workloads::measure::probe;
use v_workloads::mixed::{CapacityServer, MixStats, MixedClient};

fn run(workstations: usize) -> (f64, f64, f64) {
    let cfg = ClusterConfig::three_mb().with_hosts(workstations + 1, CpuSpeed::Mc68000At10MHz);
    let mut cluster = Cluster::new(cfg);
    let server_rep = probe(Default::default());
    let server = cluster.spawn(
        HostId(0),
        "fileserver",
        Box::new(CapacityServer::new(
            SimDuration::from_millis_f64(3.5),
            server_rep,
        )),
    );
    let stats: Vec<_> = (0..workstations)
        .map(|i| {
            let st = probe(MixStats::default());
            cluster.spawn(
                HostId(i + 1),
                "workstation",
                Box::new(MixedClient::new(
                    server,
                    50,
                    SimDuration::from_millis(300),
                    i as u64 + 1,
                    st.clone(),
                )),
            );
            st
        })
        .collect();
    let t0 = cluster.now();
    cluster.run();
    let secs = cluster.now().since(t0).as_secs_f64();
    let total: u64 = stats.iter().map(|s| s.borrow().requests()).sum();
    let page_ms = stats.iter().map(|s| s.borrow().page_ms()).sum::<f64>() / workstations as f64;
    (
        total as f64 / secs,
        page_ms,
        cluster.cpu_utilization(HostId(0)),
    )
}

fn main() {
    println!("workstations | served req/s | page response ms | server CPU");
    println!("-------------+--------------+------------------+-----------");
    for k in [1usize, 2, 5, 10, 20, 30] {
        let (rps, page, util) = run(k);
        println!(
            "{k:>12} | {rps:>12.1} | {page:>16.2} | {:>8.1}%",
            util * 100.0
        );
    }
    println!();
    println!("paper §7: ~28 requests/s ceiling; ~10 workstations satisfactory,");
    println!("30+ lead to excessive delays — look for the response-time knee.");
}
