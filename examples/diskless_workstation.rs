//! A diskless workstation's life: boot, resolve the file server by
//! logical id, load a program over the network, then read and write its
//! data files — everything over V IPC, nothing on a local disk.
//!
//! Run with: `cargo run --example diskless_workstation`

use v_fs::client::{FsCall, FsClient, FsClientReport};
use v_fs::loader::{install_image, LoadReport, ProgramLoader};
use v_fs::server::{FileServer, FileServerConfig};
use v_fs::{BlockStore, DiskModel};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::SimDuration;

fn main() {
    // One file server, two diskless workstations.
    let cfg = ClusterConfig::three_mb()
        .with_host(CpuSpeed::Mc68000At10MHz) // the file server machine
        .with_hosts(2, CpuSpeed::Mc68000At10MHz);
    let mut cluster = Cluster::new(cfg);

    // The server's disk holds a 64 KB "shell" image and a data file.
    let mut store = BlockStore::new();
    install_image(&mut store, "shell", 65536, 0x5C);
    store
        .create_with("motd", &vec![0x42u8; 2048])
        .expect("fresh store");
    let server = cluster.spawn(
        HostId(0),
        "fileserver",
        Box::new(FileServer::new(
            FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(15)),
                transfer_unit: 4096,
                ..FileServerConfig::default()
            },
            store,
        )),
    );

    // Workstation 1 boots by loading the shell (two reads: header, then
    // the image via MoveTo — §6.3).
    let load = std::rc::Rc::new(std::cell::RefCell::new(LoadReport::default()));
    cluster.spawn(
        HostId(1),
        "ws1-boot",
        Box::new(ProgramLoader::new(server, "shell", load.clone())),
    );

    // Workstation 2 edits a file: read, modify, write back, re-read.
    let edit = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
    cluster.spawn(
        HostId(2),
        "ws2-editor",
        Box::new(FsClient::new(
            server,
            vec![
                FsCall::Open("motd".into()),
                FsCall::QueryExpect(2048),
                FsCall::ReadExpect {
                    block: 0,
                    count: 512,
                    expect: 0x42,
                },
                FsCall::WriteFill {
                    block: 0,
                    count: 512,
                    fill: 0x43,
                },
                FsCall::ReadExpect {
                    block: 0,
                    count: 512,
                    expect: 0x43,
                },
            ],
            edit.clone(),
        )),
    );

    cluster.run();

    let l = load.borrow();
    assert!(l.loaded && l.integrity_errors == 0, "boot failed: {l:?}");
    println!(
        "ws1 loaded 64 KB shell in {:.0} ms ({:.0} KB/s) — paper: ~340 ms remote",
        l.elapsed_ms,
        64.0 / (l.elapsed_ms / 1000.0)
    );

    let e = edit.borrow();
    assert!(e.done && e.errors == 0 && e.integrity_errors == 0, "{e:?}");
    println!(
        "ws2 completed {} file operations, all verified",
        e.completed
    );

    println!(
        "file server CPU utilization: {:.1}%",
        cluster.cpu_utilization(HostId(0)) * 100.0
    );
}
