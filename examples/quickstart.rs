//! Quickstart: two diskless workstations exchanging V messages.
//!
//! Builds a 2-host 3 Mb cluster, runs a synchronous message exchange and
//! a 1 KB `MoveTo`, and prints the measured times next to the paper's
//! Table 5-1 values.
//!
//! Run with: `cargo run --example quickstart`

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::measure::probe;
use v_workloads::mover::{Grantor, MoveDir, Mover};

fn main() {
    // A client workstation and a server workstation on the 3 Mb net.
    let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
    let mut cluster = Cluster::new(cfg);

    // 1000 Send-Receive-Reply exchanges across the network.
    let echo = cluster.spawn(HostId(1), "echo", Box::new(EchoServer));
    let rep = probe(Default::default());
    cluster.spawn(
        HostId(0),
        "pinger",
        Box::new(Pinger::new(echo, 1000, rep.clone())),
    );
    cluster.run();
    let srr = rep.borrow().per_op_ms();
    println!("remote Send-Receive-Reply: {srr:.2} ms   (paper: 3.18 ms)");

    // 300 MoveTo transfers of 1 KB against a standing segment grant.
    let rep = probe(Default::default());
    let mover = cluster.spawn(
        HostId(0),
        "mover",
        Box::new(Mover::new(300, 1024, MoveDir::To, 0xAB, rep.clone())),
    );
    cluster.spawn(
        HostId(1),
        "grantor",
        Box::new(Grantor {
            mover,
            size: 1024,
            pattern: 0xAB,
            dir: MoveDir::To,
            report: rep.clone(),
        }),
    );
    cluster.run();
    let r = rep.borrow();
    assert!(r.clean(), "transfer failed: {r:?}");
    println!(
        "remote MoveTo 1024 bytes:  {:.2} ms   (paper: 9.05 ms)",
        r.per_op_ms()
    );

    let stats = cluster.kernel_stats(HostId(0));
    println!(
        "client kernel: {} remote sends, {} data chunks, {} retransmissions",
        stats.sends_remote, stats.chunks_sent, stats.retransmissions
    );
    println!(
        "medium: {} frames, {} bytes",
        cluster.medium_stats().frames_sent,
        cluster.medium_stats().bytes_sent
    );
}
