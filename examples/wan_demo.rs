//! Off the segment: V message exchanges across a store-and-forward
//! gateway and over a lossy long-haul link.
//!
//! The paper's diskless workstations share one Ethernet; this demo
//! places the client and the echo server on *different* segments joined
//! by a gateway with a bounded queue, injects loss, and shows the
//! kernel's reliability machinery absorbing both the extra hop and the
//! dropped frames — then repeats the exchange over a 30 ms WAN line
//! where distance, not protocol, dominates.
//!
//! Run with: `cargo run --example wan_demo`

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_net::{FaultPlan, InternetworkConfig, LinkParams};
use v_sim::SimDuration;
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::measure::probe;

fn main() {
    // --- Across the gateway, through a 5% loss storm -------------------
    let mut topo = InternetworkConfig::two_segments();
    topo.gateway_queue = 4;
    let mut cfg = ClusterConfig::internetwork(topo)
        .with_host_on(CpuSpeed::Mc68000At8MHz, 0)
        .with_host_on(CpuSpeed::Mc68000At8MHz, 1);
    cfg.faults = FaultPlan::with_loss(0.05);
    cfg.protocol.retransmit_timeout = SimDuration::from_millis(20);
    let mut cluster = Cluster::new(cfg);

    let echo = cluster.spawn(HostId(1), "echo", Box::new(EchoServer));
    let rep = probe(Default::default());
    cluster.spawn(
        HostId(0),
        "pinger",
        Box::new(Pinger::new(echo, 500, rep.clone())),
    );
    cluster.run();
    let r = rep.borrow();
    assert_eq!(r.iterations, 500, "every exchange must complete");
    assert_eq!(r.failures, 0);
    assert_eq!(r.integrity_errors, 0);
    println!(
        "500/500 exchanges across the gateway under 5% loss; mean {:.2} ms",
        r.per_op_ms()
    );
    println!("  (same exchange on one clean segment: 3.22 ms)");

    let k0 = cluster.kernel_stats(HostId(0));
    let k1 = cluster.kernel_stats(HostId(1));
    let g = cluster
        .gateway_stats_total()
        .expect("internetwork topology");
    let m = cluster.medium_stats();
    println!();
    println!("what the topology did to the traffic:");
    println!(
        "  segments: {} frames on the wire, {} dropped by loss injection",
        m.frames_sent, m.dropped
    );
    println!(
        "  gateway: {} frames forwarded, {} corrupt discarded, {} queue overflows, peak queue {}",
        g.forwarded, g.corrupt_drops, g.queue_drops, g.max_queue
    );
    println!(
        "  recovery: {} client retransmissions, {} cached replies re-sent, {} duplicates filtered",
        k0.retransmissions, k1.replies_retransmitted, k1.duplicates_filtered
    );

    // --- Over a lossy long-haul line -----------------------------------
    let mut cfg =
        ClusterConfig::wan(LinkParams::T1.with_loss(0.03)).with_hosts(2, CpuSpeed::Mc68000At8MHz);
    cfg.protocol.retransmit_timeout = SimDuration::from_millis(80);
    let mut cluster = Cluster::new(cfg);
    let echo = cluster.spawn(HostId(1), "echo", Box::new(EchoServer));
    let rep = probe(Default::default());
    cluster.spawn(
        HostId(0),
        "pinger",
        Box::new(Pinger::new(echo, 200, rep.clone())),
    );
    cluster.run();
    let r = rep.borrow();
    assert_eq!(r.iterations, 200);
    assert_eq!(r.failures, 0);
    let k0 = cluster.kernel_stats(HostId(0));
    println!();
    println!(
        "200/200 exchanges over a 1.544 Mb/s, 30 ms line with 3% loss; mean {:.1} ms",
        r.per_op_ms()
    );
    println!(
        "  {} retransmissions paid for the losses; the protocol needed no change at all",
        k0.retransmissions
    );
}
