//! Reliability demo: V message exchanges ride an *unreliable* datagram
//! service with no transport layer underneath — the reply is the
//! acknowledgement, retransmission is the recovery, and the alien table
//! filters duplicates. Inject heavy loss, duplication and corruption and
//! every exchange still completes exactly once, with data intact.
//!
//! Run with: `cargo run --example lossy_network`

use v_fs::client::{FsCall, FsClient, FsClientReport};
use v_fs::server::{FileServer, FileServerConfig};
use v_fs::{BlockStore, DiskModel};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_net::FaultPlan;
use v_sim::SimDuration;
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::measure::probe;

fn main() {
    // 5% loss, 2% duplication, 2% corruption — far worse than any real
    // local network of the era.
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
    cfg.faults = FaultPlan {
        loss: 0.05,
        duplicate: 0.02,
        corrupt: 0.02,
    };
    // Tighten the retransmission timer so the demo converges quickly.
    cfg.protocol.retransmit_timeout = SimDuration::from_millis(20);
    cfg.protocol.transfer_timeout = SimDuration::from_millis(20);
    let mut cluster = Cluster::new(cfg);

    // 500 message exchanges through the storm.
    let echo = cluster.spawn(HostId(1), "echo", Box::new(EchoServer));
    let rep = probe(Default::default());
    cluster.spawn(
        HostId(0),
        "pinger",
        Box::new(Pinger::new(echo, 500, rep.clone())),
    );
    cluster.run();
    let r = rep.borrow();
    assert_eq!(r.iterations, 500, "every exchange must complete");
    assert_eq!(r.failures, 0);
    assert_eq!(r.integrity_errors, 0);
    println!(
        "500/500 exchanges completed; mean {:.2} ms (clean network: 3.18 ms)",
        r.per_op_ms()
    );

    // File operations with real data through the same storm.
    let mut store = BlockStore::new();
    store.create_with("data", &vec![0x7Au8; 8192]).unwrap();
    let server = cluster.spawn(
        HostId(1),
        "fileserver",
        Box::new(FileServer::new(
            FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(2)),
                ..FileServerConfig::default()
            },
            store,
        )),
    );
    let frep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
    let mut script = vec![FsCall::Open("data".into())];
    for i in 0..16 {
        script.push(FsCall::WriteFill {
            block: i % 4,
            count: 512,
            fill: 0x80 + i as u8,
        });
        script.push(FsCall::ReadExpect {
            block: i % 4,
            count: 512,
            expect: 0x80 + i as u8,
        });
    }
    cluster.spawn(
        HostId(0),
        "fsclient",
        Box::new(FsClient::new(server, script, frep.clone())),
    );
    cluster.run();
    let f = frep.borrow();
    assert!(f.done && f.errors == 0 && f.integrity_errors == 0, "{f:?}");
    println!("33/33 file operations verified byte-for-byte");

    let k0 = cluster.kernel_stats(HostId(0));
    let k1 = cluster.kernel_stats(HostId(1));
    let m = cluster.medium_stats();
    println!();
    println!("what it took under the hood:");
    println!(
        "  medium: {} frames ({} dropped, {} corrupted, {} duplicated)",
        m.frames_sent, m.dropped, m.corrupted, m.duplicated
    );
    println!(
        "  client kernel: {} retransmissions, {} checksum drops",
        k0.retransmissions, k0.checksum_drops
    );
    println!(
        "  server kernel: {} duplicates filtered, {} cached replies retransmitted,",
        k1.duplicates_filtered, k1.replies_retransmitted
    );
    println!(
        "                 {} reply-pending packets, {} transfer resumes",
        k1.reply_pending_sent,
        k0.transfer_resumes + k1.transfer_resumes
    );
}
