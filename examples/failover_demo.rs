//! A boot storm over a replicated read-only root — with the primary
//! replica crashing in the middle of it.
//!
//! Three read-only root replicas (cloned stores, identical file ids)
//! serve four diskless workstations reading the boot image. A chaos
//! schedule crashes the primary's host mid-storm; each client absorbs
//! one slow read (the kernel's retransmission budget is the failure
//! detector — ~2.6 s before `HostDown` at the defaults), fails over,
//! and finishes against the survivors. The per-client tables show the
//! spike confined to a single operation.
//!
//! Run with: `cargo run --release --example failover_demo`

use std::cell::RefCell;
use std::rc::Rc;

use v_fs::client::FsCall;
use v_fs::replica::{spawn_replica_group, ReplicaReport, ReplicatedFsClient};
use v_fs::{BlockStore, DiskModel, FileServerConfig, BLOCK_SIZE};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::{SimDuration, SimTime};
use v_workloads::chaos::{run_with_faults, FaultSchedule};

const REPLICAS: usize = 3;
const WORKSTATIONS: usize = 4;
const BOOT_BLOCKS: u32 = 48;

fn main() {
    // Hosts 0..2: replicas; hosts 3..6: workstations.
    let cfg =
        ClusterConfig::three_mb().with_hosts(REPLICAS + WORKSTATIONS, CpuSpeed::Mc68000At10MHz);
    let mut cl = Cluster::new(cfg);

    let mut store = BlockStore::new();
    store
        .create_with("vmunix", &vec![0x7E; BOOT_BLOCKS as usize * BLOCK_SIZE])
        .expect("fresh store");
    let fs_cfg = FileServerConfig {
        disk: DiskModel::fixed(SimDuration::from_millis(2)),
        ..FileServerConfig::default()
    };
    let hosts: Vec<HostId> = (0..REPLICAS).map(HostId).collect();
    let pids = spawn_replica_group(&mut cl, &hosts, &fs_cfg, &store);
    cl.run(); // replicas blocked in Receive

    // Every workstation boots: open the image, read it block by block.
    let mut script = vec![FsCall::Open("vmunix".into())];
    for b in 0..BOOT_BLOCKS {
        script.push(FsCall::ReadExpect {
            block: b,
            count: BLOCK_SIZE as u32,
            expect: 0x7E,
        });
    }
    let reports: Vec<Rc<RefCell<ReplicaReport>>> = (0..WORKSTATIONS)
        .map(|i| {
            let rep = Rc::new(RefCell::new(ReplicaReport::default()));
            cl.spawn(
                HostId(REPLICAS + i),
                "workstation",
                Box::new(ReplicatedFsClient::new(
                    pids.clone(),
                    script.clone(),
                    rep.clone(),
                )),
            );
            rep
        })
        .collect();

    // The chaos schedule: the primary dies 100 ms into the boot storm.
    let crash_at = SimTime::from_millis(100);
    let schedule = FaultSchedule::new().crash_at(crash_at, HostId(0));
    run_with_faults(&mut cl, schedule);

    println!("boot storm over a replicated read-only root, primary crashed at 100 ms\n");
    println!("workstation | reads | failovers | worst read ms | median read ms");
    println!("------------+-------+-----------+---------------+---------------");
    for (i, rep) in reports.iter().enumerate() {
        let r = rep.borrow();
        assert!(r.fs.done && !r.gave_up, "workstation {i} failed: {r:?}");
        assert_eq!(r.fs.integrity_errors, 0, "workstation {i}: {r:?}");
        let mut lats: Vec<f64> = r.op_ms.iter().skip(1).map(|&(_, l)| l).collect();
        lats.sort_by(f64::total_cmp);
        let worst = lats.last().copied().unwrap_or(0.0);
        let median = lats.get(lats.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{i:>11} | {:>5} | {:>9} | {worst:>13.1} | {median:>14.2}",
            r.fs.completed - 1, // minus the open
            r.failovers,
        );
    }
    println!();
    println!("every workstation finished its boot: one read per client absorbed the");
    println!("failure-detection wait (the retransmission budget), the rest ran at");
    println!("steady latency against the surviving replicas.");
}
