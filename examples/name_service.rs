//! Process naming across the network: `SetPid` / `GetPid` with scopes
//! and broadcast resolution (§3.1), plus what happens when the id does
//! not exist anywhere.
//!
//! Run with: `cargo run --example name_service`

use v_kernel::{
    logical, Api, Cluster, ClusterConfig, CpuSpeed, HostId, Message, Outcome, Pid, Program, Scope,
};
use v_workloads::echo::EchoServer;

/// Resolves a list of (label, logical id, scope) queries and prints what
/// it finds, then exchanges one message with the file server it found.
struct Resolver {
    queries: Vec<(&'static str, u32, Scope)>,
    at: usize,
    found_server: Option<Pid>,
}

impl Program for Resolver {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                let (_, id, scope) = self.queries[self.at];
                api.get_pid(id, scope);
            }
            Outcome::GetPid(result) => {
                let (label, id, scope) = self.queries[self.at];
                match result {
                    Some(pid) => println!("GetPid({label}, {scope:?}) -> {pid}"),
                    None => println!("GetPid({label}, {scope:?}) -> not found"),
                }
                if id == logical::FILE_SERVER {
                    self.found_server = self.found_server.or(result);
                }
                self.at += 1;
                if self.at < self.queries.len() {
                    let (_, id, scope) = self.queries[self.at];
                    api.get_pid(id, scope);
                } else if let Some(server) = self.found_server {
                    // Prove the resolved pid is usable: one exchange.
                    api.send(Message::empty(), server);
                } else {
                    api.exit();
                }
            }
            Outcome::Send(Ok(_)) => {
                println!("exchanged a message with the resolved file server — pid is live");
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Registers itself as the network file server, then serves echoes.
struct RegisteringServer;
impl Program for RegisteringServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        if let Outcome::Started = outcome {
            // Visible to the whole network.
            api.set_pid(logical::FILE_SERVER, api.self_pid(), Scope::Both);
        }
        EchoServer.resume(api, outcome)
    }
}

fn main() {
    let cfg = ClusterConfig::three_mb().with_hosts(3, CpuSpeed::Mc68000At10MHz);
    let mut cluster = Cluster::new(cfg);

    // Host 1 runs the network file server; host 2 runs a *local-only*
    // print spooler under the same logical id namespace.
    cluster.spawn(HostId(1), "fileserver", Box::new(RegisteringServer));

    struct LocalSpooler;
    impl Program for LocalSpooler {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            if let Outcome::Started = outcome {
                api.set_pid(logical::NAME_SERVER, api.self_pid(), Scope::Local);
            }
            EchoServer.resume(api, outcome)
        }
    }
    cluster.spawn(HostId(2), "spooler", Box::new(LocalSpooler));
    cluster.run(); // let registrations settle

    // Host 0 resolves names. The file server needs a broadcast (it is
    // remote); the spooler is invisible from here (scope Local on another
    // host); an unknown id times out to None.
    cluster.spawn(
        HostId(0),
        "resolver",
        Box::new(Resolver {
            queries: vec![
                ("FILE_SERVER", logical::FILE_SERVER, Scope::Both),
                ("FILE_SERVER", logical::FILE_SERVER, Scope::Local),
                (
                    "NAME_SERVER (registered Local on another host)",
                    logical::NAME_SERVER,
                    Scope::Both,
                ),
                ("EXEC_SERVER (nowhere)", logical::EXEC_SERVER, Scope::Both),
            ],
            at: 0,
            found_server: None,
        }),
    );
    cluster.run();

    let s = cluster.kernel_stats(HostId(0));
    println!(
        "resolver kernel: {} GetPid broadcasts; answers received from peer kernels",
        s.getpid_broadcasts
    );
}
