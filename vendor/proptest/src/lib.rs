//! Offline, deterministic subset of the `proptest` crate API.
//!
//! This workspace builds in environments with no access to a crates.io
//! mirror, so the property tests link against this vendored shim instead
//! of the real crate. It implements exactly the surface the tests use —
//! the `proptest!` macro, range/tuple/collection strategies,
//! `prop_oneof!`, `prop_map`, `any`, `Just`, and the `prop_assert*`
//! macros — with a seeded SplitMix64 sampler so every run explores the
//! same cases (no shrinking, no failure persistence). If a registry
//! becomes available, deleting `vendor/proptest` and pointing the
//! workspace dependency at the real crate is a drop-in swap.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases run per property when the test does not override it.
pub const DEFAULT_CASES: u32 = 256;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run: the configured count, unless the
    /// `PROPTEST_CASES` environment variable overrides it (used by CI
    /// smoke jobs to trade coverage for speed).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// The sampler state requested via the `PROPTEST_SEED` environment
/// variable (hex with an `0x` prefix, or decimal), if any. Failure
/// messages print the failing case's state in this form; running one
/// property with `PROPTEST_SEED=<state> PROPTEST_CASES=1` replays
/// exactly that case.
///
/// # Panics
///
/// Panics on a malformed value: a replay that silently fell back to the
/// default seed would run different cases and report a false pass.
pub fn seed_override() -> Option<u64> {
    let v = std::env::var("PROPTEST_SEED").ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    };
    Some(parsed.unwrap_or_else(|| {
        panic!("PROPTEST_SEED={v:?} is not a valid seed (expected 0x-prefixed hex or decimal)")
    }))
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// SplitMix64: tiny, fast, and deterministic across platforms.
pub struct TestRng(u64);

impl TestRng {
    /// Seed derived from the test name so distinct properties explore
    /// distinct case sequences, but every run of one property is
    /// identical.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Rebuilds a sampler from a previously reported state — the replay
    /// handle a failure message prints as its "seed".
    pub fn from_state(state: u64) -> Self {
        TestRng(state)
    }

    /// The sampler's current state. Captured before each case so a
    /// failure can be replayed exactly (the shim does no shrinking, so
    /// this seed plus the printed inputs are the starting point for
    /// manual minimization).
    pub fn state(&self) -> u64 {
        self.0
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A generator of values; the shim samples instead of shrinking.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapStrategy<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                // Narrowing to f32 (or the final rounding in f64) can land
                // exactly on the exclusive upper bound; step back inside.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::array::*`).
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = Strategy::sample(&self.len, rng);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }

    pub mod array {
        use super::super::{Strategy, TestRng};

        pub struct ArrayStrategy<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
            type Value = [S::Value; N];
            fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.0.sample(rng))
            }
        }

        pub fn uniform32<S: Strategy>(elem: S) -> ArrayStrategy<S, 32> {
            ArrayStrategy(elem)
        }
    }
}

pub mod prelude {
    pub use super::prop;
    pub use super::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Binds `name in strategy` argument lists one pair at a time (a token
/// muncher sidesteps the `expr`-followed-by-`)` restriction).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $dbg:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
        $dbg.push((stringify!($arg), format!("{:?}", $arg)));
    };
    ($rng:ident $dbg:ident; $arg:ident in $strat:expr,) => {
        $crate::__proptest_bind!($rng $dbg; $arg in $strat);
    };
    ($rng:ident $dbg:ident; $arg:ident in $strat:expr, $($rest:tt)+) => {
        let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
        $dbg.push((stringify!($arg), format!("{:?}", $arg)));
        $crate::__proptest_bind!($rng $dbg; $($rest)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = match $crate::seed_override() {
                Some(state) => $crate::TestRng::from_state(state),
                None => $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name))),
            };
            for __case in 0..config.effective_cases() {
                let __seed = rng.state();
                let mut __dbg: Vec<(&str, String)> = Vec::new();
                $crate::__proptest_bind!(rng __dbg; $($args)*);
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest case {__case} of {} failed (seed 0x{__seed:016x}) with inputs:",
                        stringify!($name)
                    );
                    for (name, value) in &__dbg {
                        eprintln!("    {name} = {value}");
                    }
                    eprintln!(
                        "  replay just this case with PROPTEST_SEED=0x{__seed:016x} PROPTEST_CASES=1 \
                         (no shrinking: minimize from these inputs manually)"
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod self_tests {
    use super::prelude::*;

    #[test]
    fn determinism() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_replays_a_case_exactly() {
        let mut a = TestRng::deterministic("replay");
        for _ in 0..17 {
            a.next_u64();
        }
        // Capture the state mid-stream (as the runner does before each
        // case) and replay from it.
        let seed = a.state();
        let expected: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = TestRng::from_state(seed);
        let replayed: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(expected, replayed);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            x in 3u32..17,
            y in 1u8..=255,
            f in -2.0f64..2.0,
            g in 0.0f32..1.0,
            _b in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((0.0..1.0).contains(&g));
        }

        #[test]
        fn collections_and_oneof(
            v in prop::collection::vec(any::<u8>(), 2..9),
            a in prop::array::uniform32(any::<u8>()),
            pick in prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|n| n)],
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert_eq!(a.len(), 32);
            prop_assert!((1..5).contains(&pick));
        }
    }
}
