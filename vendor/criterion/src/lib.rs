//! Offline subset of the `criterion` crate API.
//!
//! The workspace builds without a crates.io mirror, so
//! `crates/bench/benches/paper_tables.rs` links against this shim. It
//! implements the surface the paper-table benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — measuring with
//! plain `std::time::Instant` and reporting min/mean/max per function.
//! No statistical analysis, HTML reports, or regression detection; swap
//! the workspace `criterion` dependency for the real crate when a
//! registry is available.

use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Summary)>,
}

struct Summary {
    samples: usize,
    min: Duration,
    mean: Duration,
    max: Duration,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
            sample_size: 10,
        }
    }

    pub fn final_summary(&self) {
        eprintln!("{} benchmark functions completed", self.results.len());
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            rounds: self.sample_size,
        };
        f(&mut bencher);
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let summary = Summary {
            samples: n,
            min: bencher.samples.iter().min().copied().unwrap_or_default(),
            mean: total / n as u32,
            max: bencher.samples.iter().max().copied().unwrap_or_default(),
        };
        eprintln!(
            "  {}/{id}: mean {:?} (min {:?}, max {:?}, {} samples)",
            self.group, summary.mean, summary.min, summary.max, summary.samples
        );
        self.criterion
            .results
            .push((format!("{}/{id}", self.group), summary));
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.rounds {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            black_box(out);
        }
    }
}

/// Identity function that defeats constant-folding of the argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench` (and test-harness flags like
            // `--test`); a plain-main harness just ignores them.
            $($group();)+
        }
    };
}
