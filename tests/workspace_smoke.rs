//! Workspace wiring smoke test: every crate must be reachable through the
//! `v_system` facade re-exports, and the public-API example from the
//! `v_kernel` crate docs must run through them unchanged. Catches facade
//! regressions (a dropped re-export still builds the workspace but breaks
//! downstream users of `v-system`).

use v_system::kernel::{
    Api, Cluster, ClusterConfig, CpuSpeed, HostId, Message, Outcome, Pid, Program,
};

/// Replies to every message with the same payload.
struct Echo;
impl Program for Echo {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                api.reply(msg, from).unwrap();
                api.receive();
            }
            _ => api.exit(),
        }
    }
}

/// Sends one message to the echo server, then exits.
struct Client {
    server: Pid,
    saw_reply: v_system::workloads::measure::Probe<bool>,
}
impl Program for Client {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                let mut m = Message::empty();
                m.set_u32(4, 42);
                api.send(m, self.server);
            }
            Outcome::Send(Ok(reply)) => {
                assert_eq!(reply.get_u32(4), 42);
                *self.saw_reply.borrow_mut() = true;
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

#[test]
fn facade_echo_round_trip() {
    let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
    let mut cluster = Cluster::new(cfg);
    let server = cluster.spawn(HostId(0), "echo", Box::new(Echo));
    let saw_reply = v_system::workloads::measure::probe(false);
    cluster.spawn(
        HostId(1),
        "client",
        Box::new(Client {
            server,
            saw_reply: saw_reply.clone(),
        }),
    );
    cluster.run();
    assert!(*saw_reply.borrow(), "client never saw the echo reply");
}

#[test]
fn every_crate_resolves_through_the_facade() {
    // One cheap symbol per re-exported crate, so a dropped facade line is
    // a compile error here rather than a downstream surprise.
    let _ = v_system::sim::SimDuration::from_millis(1);
    let _ = v_system::wire::MSG_LEN;
    let _ = v_system::net::FaultPlan::NONE;
    let _ = v_system::kernel::ClusterConfig::three_mb();
    let _ = v_system::fs::BlockStore::new();
    let _ = v_system::workloads::measure::probe(());
    let _ = std::any::type_name::<v_system::baselines::wfs::WfsServer>();
    let _ = std::any::type_name::<v_system::bench::report::Comparison>();
}
