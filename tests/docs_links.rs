//! Link check for the Markdown documentation tree.
//!
//! Every relative link in `README.md` and `docs/*.md` must point at a
//! file or directory that exists in the repository, so the docs cannot
//! silently rot as files move. External (`http(s)://`) links and pure
//! fragments are out of scope — there is no network in CI.

use std::path::{Path, PathBuf};

/// Extracts the targets of inline Markdown links `[text](target)`.
///
/// Good enough for our hand-written docs: it scans for `](`, takes the
/// target up to the matching `)`, and ignores fenced code blocks so
/// ASCII diagrams cannot produce false links.
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(i) = rest.find("](") {
            rest = &rest[i + 2..];
            if let Some(end) = rest.find(')') {
                targets.push(rest[..end].to_string());
                rest = &rest[end + 1..];
            } else {
                break;
            }
        }
    }
    targets
}

/// Checks one document's relative links against the filesystem.
fn check_doc(repo_root: &Path, doc: &Path, broken: &mut Vec<String>) {
    let text = std::fs::read_to_string(doc)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", doc.display()));
    let base = doc.parent().unwrap_or(repo_root);
    for target in link_targets(&text) {
        if target.starts_with("http://") || target.starts_with("https://") {
            continue;
        }
        // Strip a trailing fragment; a bare fragment links within the
        // same (existing) file.
        let path_part = target.split('#').next().unwrap_or("");
        if path_part.is_empty() {
            continue;
        }
        let resolved = base.join(path_part);
        if !resolved.exists() {
            broken.push(format!(
                "{}: link `{target}` -> missing {}",
                doc.display(),
                resolved.display()
            ));
        }
    }
}

#[test]
fn every_relative_doc_link_resolves() {
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![repo_root.join("README.md")];
    let docs_dir = repo_root.join("docs");
    let entries = std::fs::read_dir(&docs_dir)
        .unwrap_or_else(|e| panic!("docs/ must exist ({}): {e}", docs_dir.display()));
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            docs.push(path);
        }
    }
    assert!(
        docs.len() >= 4,
        "expected README.md plus at least ARCHITECTURE/FAULT_MODEL/BENCHMARKS under docs/, found {docs:?}"
    );

    let mut broken = Vec::new();
    for doc in &docs {
        check_doc(&repo_root, doc, &mut broken);
    }
    assert!(
        broken.is_empty(),
        "broken doc links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn docs_tree_is_cross_linked() {
    // The three docs must reference each other and README must link all
    // three — the index stays navigable from any entry point.
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let readme = std::fs::read_to_string(repo_root.join("README.md")).expect("README.md");
    for name in ["ARCHITECTURE.md", "FAULT_MODEL.md", "BENCHMARKS.md"] {
        assert!(
            readme.contains(&format!("docs/{name}")),
            "README.md must link docs/{name}"
        );
        let body = std::fs::read_to_string(repo_root.join("docs").join(name)).expect("doc exists");
        let others = ["ARCHITECTURE.md", "FAULT_MODEL.md", "BENCHMARKS.md"]
            .into_iter()
            .filter(|o| *o != name)
            .filter(|o| body.contains(*o))
            .count();
        assert!(
            others == 2,
            "docs/{name} must cross-link both sibling docs, links {others} of 2"
        );
    }
}
