//! Paper-shape assertions: the qualitative claims of the paper must hold
//! in the reproduction (who wins, by roughly what factor, where the
//! crossovers fall). The tight quantitative pins live in
//! `crates/bench/tests/calibration.rs`.

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_sim::SimDuration;
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::measure::probe;

fn srr_ms(speed: CpuSpeed, remote: bool) -> f64 {
    let cfg = ClusterConfig::three_mb().with_hosts(2, speed);
    let mut cl = Cluster::new(cfg);
    let server = cl.spawn(
        HostId(if remote { 1 } else { 0 }),
        "echo",
        Box::new(EchoServer),
    );
    let rep = probe(Default::default());
    cl.spawn(
        HostId(0),
        "ping",
        Box::new(Pinger::new(server, 300, rep.clone())),
    );
    cl.run();
    let r = rep.borrow();
    assert!(r.clean());
    r.per_op_ms()
}

#[test]
fn remote_exchange_is_about_3x_local_but_only_2ms_more() {
    // §5.3: "the remote Send-Receive-Reply sequence takes more than 3
    // times as long as for the local case ... an alternative
    // interpretation is that the remote operation adds a delay of less
    // than 2 milliseconds."
    let local = srr_ms(CpuSpeed::Mc68000At8MHz, false);
    let remote = srr_ms(CpuSpeed::Mc68000At8MHz, true);
    assert!(remote / local > 3.0, "ratio {:.2}", remote / local);
    assert!(remote - local < 2.5, "delta {:.2}", remote - local);
}

#[test]
fn faster_processor_helps_remote_ops_too() {
    // §5.2: local ops scale with the processor (~25 %); remote ops still
    // improve ~15 % — the processor, not the wire, dominates.
    let l8 = srr_ms(CpuSpeed::Mc68000At8MHz, false);
    let l10 = srr_ms(CpuSpeed::Mc68000At10MHz, false);
    let r8 = srr_ms(CpuSpeed::Mc68000At8MHz, true);
    let r10 = srr_ms(CpuSpeed::Mc68000At10MHz, true);
    let local_gain = 1.0 - l10 / l8;
    let remote_gain = 1.0 - r10 / r8;
    assert!(
        (0.18..0.30).contains(&local_gain),
        "local gain {local_gain:.2}"
    );
    assert!(
        (0.10..0.25).contains(&remote_gain),
        "remote gain {remote_gain:.2}"
    );
}

#[test]
fn offloading_threshold_matches_section_5_3() {
    // §5.3: moving a server to another machine pays off once request
    // processing exceeds local-SRR minus the client's share of the remote
    // exchange (~0.67 ms at 10 MHz). Check both sides of the threshold.
    let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    let cl = Cluster::new(cfg);
    drop(cl);
    // Client CPU for a remote exchange:
    let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    let mut cl = Cluster::new(cfg);
    let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
    cl.run();
    let before = cl.cpu_busy(HostId(0));
    let rep = probe(Default::default());
    cl.spawn(
        HostId(0),
        "ping",
        Box::new(Pinger::new(server, 300, rep.clone())),
    );
    cl.run();
    // Serving locally costs the workstation `local_srr + P` of processor
    // time for request processing P; serving remotely costs only the
    // client share of the exchange. Offloading pays once
    // P > client_cpu_remote - local_srr — the paper computes 0.67 ms.
    let client_cpu = (cl.cpu_busy(HostId(0)).saturating_sub(before)).as_millis_f64() / 300.0;
    let local_srr = srr_ms(CpuSpeed::Mc68000At10MHz, false);
    let threshold = client_cpu - local_srr;
    assert!(
        (0.4..1.0).contains(&threshold),
        "offload threshold {threshold:.2} ms (paper: ~0.67)"
    );
}

#[test]
fn page_read_sits_within_2ms_of_the_network_penalty() {
    // §6.1: "the time to read or write a page ... is approximately 1.5
    // milliseconds more than the network penalty".
    use v_workloads::page::{PageClient, PageMode, PageOp, PageServer};
    let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    let mut cl = Cluster::new(cfg);
    let rep = probe(Default::default());
    let server = cl.spawn(
        HostId(1),
        "pageserver",
        Box::new(PageServer::new(PageMode::Segment, 512, 0x7E, rep.clone())),
    );
    cl.spawn(
        HostId(0),
        "client",
        Box::new(PageClient::new(
            server,
            PageOp::Read,
            512,
            200,
            0x7E,
            rep.clone(),
        )),
    );
    cl.run();
    let r = rep.borrow();
    assert!(r.clean());
    let model = v_kernel::CostModel::mc68000_10mhz();
    let net = v_net::NetParams::for_kind(v_net::NetworkKind::Experimental3Mb);
    let penalty = model.network_penalty(&net, 64).as_millis_f64()
        + model.network_penalty(&net, 576).as_millis_f64();
    let overhead = r.per_op_ms() - penalty;
    assert!(
        (0.5..2.2).contains(&overhead),
        "V IPC overhead over penalty: {overhead:.2} ms"
    );
}

#[test]
fn sequential_access_within_15_percent_of_disk_floor() {
    // §6.2's headline: request-response file access sits within 10-15 %
    // of the disk-latency floor, so streaming has little to offer.
    for disk in [15u64, 20] {
        use v_workloads::seq::{SeqReadClient, SeqReadServer};
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        let mut cl = Cluster::new(cfg);
        let rep = probe(Default::default());
        let server = cl.spawn(
            HostId(1),
            "seq",
            Box::new(SeqReadServer::new(
                512,
                SimDuration::from_millis(disk),
                0x22,
                rep.clone(),
            )),
        );
        cl.spawn(
            HostId(0),
            "reader",
            Box::new(SeqReadClient::new(
                server,
                512,
                200,
                SimDuration::ZERO,
                rep.clone(),
            )),
        );
        cl.run();
        let r = rep.borrow();
        assert!(r.clean());
        let overhead = r.per_op_ms() / disk as f64 - 1.0;
        assert!(
            overhead < 0.15,
            "disk {disk} ms: overhead {:.1}% exceeds the paper's bound",
            overhead * 100.0
        );
    }
}

#[test]
fn program_loading_shape_holds() {
    // Table 6-3's shape: remote cost falls as the transfer unit grows,
    // flattens past 16 KB, and the large-unit rate is within the same
    // ballpark as writing packets back-to-back (~200 KB/s).
    use v_workloads::load::{LoadClient, LoadServer};
    let mut results = Vec::new();
    for unit in [1024u32, 4096, 16384, 65536] {
        let cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
        let mut cl = Cluster::new(cfg);
        let rep = probe(Default::default());
        let server = cl.spawn(
            HostId(1),
            "loadserver",
            Box::new(LoadServer::new(65536, unit, 0x42, rep.clone())),
        );
        cl.spawn(
            HostId(0),
            "loadclient",
            Box::new(LoadClient::new(server, 65536, 3, 0x42, rep.clone())),
        );
        cl.run();
        let r = rep.borrow();
        assert!(r.clean());
        results.push(r.per_op_ms());
    }
    assert!(results[0] > results[1] && results[1] > results[2] && results[2] >= results[3]);
    // Flattening: 16 KB → 64 KB gains < 5 %.
    assert!((results[2] - results[3]) / results[2] < 0.05);
    // Steep part: 1 KB → 64 KB gains > 25 %.
    assert!((results[0] - results[3]) / results[0] > 0.25);
    let rate_kbs = 64.0 / (results[3] / 1000.0);
    assert!(
        (150.0..230.0).contains(&rate_kbs),
        "rate {rate_kbs:.0} KB/s"
    );
}

#[test]
fn ip_encapsulation_costs_about_20_percent() {
    use v_kernel::Encapsulation;
    let raw = srr_ms(CpuSpeed::Mc68000At8MHz, true);
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
    cfg.protocol.encapsulation = Encapsulation::Ip;
    let mut cl = Cluster::new(cfg);
    let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
    let rep = probe(Default::default());
    cl.spawn(
        HostId(0),
        "ping",
        Box::new(Pinger::new(server, 300, rep.clone())),
    );
    cl.run();
    let ip = rep.borrow().per_op_ms();
    let overhead = ip / raw - 1.0;
    assert!(
        (0.12..0.28).contains(&overhead),
        "IP overhead {:.1}%",
        overhead * 100.0
    );
}
