//! Integration tests: V IPC semantics across the whole stack.

use std::cell::RefCell;
use std::rc::Rc;

use v_kernel::{
    Access, Api, Cluster, ClusterConfig, CpuSpeed, HostId, Message, Outcome, Pid, Program,
};

fn cluster(hosts: usize) -> Cluster {
    Cluster::new(ClusterConfig::three_mb().with_hosts(hosts, CpuSpeed::Mc68000At10MHz))
}

type Log = Rc<RefCell<Vec<String>>>;

/// Sends one message and logs the reply word.
struct OneShot {
    to: Pid,
    tag: u32,
    log: Log,
}
impl Program for OneShot {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => {
                let mut m = Message::empty();
                m.set_u32(4, self.tag);
                api.send(m, self.to);
            }
            Outcome::Send(Ok(reply)) => {
                self.log
                    .borrow_mut()
                    .push(format!("ok:{}:{}", self.tag, reply.get_u32(4)));
                api.exit();
            }
            Outcome::Send(Err(e)) => {
                self.log
                    .borrow_mut()
                    .push(format!("err:{}:{e:?}", self.tag));
                api.exit();
            }
            _ => api.exit(),
        }
    }
}

/// Receives `n` messages, logging sender order, replying with tag+100.
struct OrderedServer {
    n: usize,
    log: Log,
}
impl Program for OrderedServer {
    fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
        match outcome {
            Outcome::Started => api.receive(),
            Outcome::Receive { from, msg } => {
                let tag = msg.get_u32(4);
                self.log.borrow_mut().push(format!("recv:{tag}"));
                let mut reply = Message::empty();
                reply.set_u32(4, tag + 100);
                api.reply(reply, from).expect("sender is waiting");
                self.n -= 1;
                if self.n > 0 {
                    api.receive();
                } else {
                    api.exit();
                }
            }
            _ => api.exit(),
        }
    }
}

#[test]
fn messages_queue_fcfs_and_replies_route_back() {
    let mut cl = cluster(4);
    let log: Log = Default::default();
    let server = cl.spawn(
        HostId(0),
        "server",
        Box::new(OrderedServer {
            n: 3,
            log: log.clone(),
        }),
    );
    // Three remote clients send in a staggered order; the server is not
    // receiving yet, so messages queue FCFS at its kernel.
    for (i, host) in [(1u32, HostId(1)), (2, HostId(2)), (3, HostId(3))] {
        cl.spawn(
            host,
            "client",
            Box::new(OneShot {
                to: server,
                tag: i,
                log: log.clone(),
            }),
        );
    }
    cl.run();
    let log = log.borrow();
    // All three exchanges completed with the right reply pairing.
    for i in 1..=3u32 {
        assert!(
            log.contains(&format!("ok:{i}:{}", i + 100)),
            "missing exchange {i}: {log:?}"
        );
    }
    // Receive order matches arrival order (staggered spawn = staggered
    // arrival in the deterministic simulator).
    let recvs: Vec<_> = log.iter().filter(|s| s.starts_with("recv:")).collect();
    assert_eq!(recvs, ["recv:1", "recv:2", "recv:3"]);
}

#[test]
fn send_to_nonexistent_local_and_remote_process_fails() {
    let mut cl = cluster(2);
    let log: Log = Default::default();
    let h0 = cl.logical_host(HostId(0));
    let h1 = cl.logical_host(HostId(1));
    let dead_local = Pid::new(h0, 0x4242);
    let dead_remote = Pid::new(h1, 0x4242);
    cl.spawn(
        HostId(0),
        "to-local",
        Box::new(OneShot {
            to: dead_local,
            tag: 1,
            log: log.clone(),
        }),
    );
    cl.spawn(
        HostId(0),
        "to-remote",
        Box::new(OneShot {
            to: dead_remote,
            tag: 2,
            log: log.clone(),
        }),
    );
    cl.run();
    let log = log.borrow();
    assert!(
        log.contains(&"err:1:NonexistentProcess".to_string()),
        "{log:?}"
    );
    // Remote failure arrives as a Nack from the peer kernel.
    assert!(
        log.contains(&"err:2:NonexistentProcess".to_string()),
        "{log:?}"
    );
    assert!(cl.kernel_stats(HostId(1)).nacks_sent >= 1);
}

#[test]
fn send_to_unreachable_host_fails_host_down_after_n_retries() {
    // Host exists in pid space but no such station answers: use learned
    // addressing so the packet is broadcast into the void.
    let mut cfg = ClusterConfig::ten_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
    cfg.protocol.retransmit_timeout = v_sim::SimDuration::from_millis(10);
    let mut cl = Cluster::new(cfg);
    let ghost = Pid::new(v_kernel::LogicalHost(0x7777), 1);
    let log: Log = Default::default();
    cl.spawn(
        HostId(0),
        "to-ghost",
        Box::new(OneShot {
            to: ghost,
            tag: 9,
            log: log.clone(),
        }),
    );
    cl.run();
    assert!(
        log.borrow().contains(&"err:9:HostDown".to_string()),
        "{log:?}"
    );
    let st = cl.kernel_stats(HostId(0));
    assert_eq!(st.send_timeouts, 1);
    assert_eq!(st.retransmissions as u32, cl.config().protocol.max_retries);
}

#[test]
fn reply_requires_awaiting_sender() {
    struct BadReplier {
        victim: Pid,
        log: Log,
    }
    impl Program for BadReplier {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            if let Outcome::Started = outcome {
                let err = api.reply(Message::empty(), self.victim).unwrap_err();
                self.log.borrow_mut().push(format!("{err:?}"));
            }
            api.exit();
        }
    }
    let mut cl = cluster(1);
    let log: Log = Default::default();
    // The victim just waits in Receive — it is not awaiting reply.
    struct Waits;
    impl Program for Waits {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            if let Outcome::Started = outcome {
                api.receive();
            } else {
                api.exit();
            }
        }
    }
    let victim = cl.spawn(HostId(0), "victim", Box::new(Waits));
    cl.spawn(
        HostId(0),
        "bad",
        Box::new(BadReplier {
            victim,
            log: log.clone(),
        }),
    );
    cl.run();
    assert_eq!(log.borrow().as_slice(), ["NotAwaitingReply"]);
}

#[test]
fn exit_unblocks_local_senders_and_nacks_remote_ones() {
    struct ExitsAfterDelay;
    impl Program for ExitsAfterDelay {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.delay(v_sim::SimDuration::from_millis(50)),
                _ => api.exit(),
            }
        }
    }
    let mut cl = cluster(2);
    let log: Log = Default::default();
    let doomed = cl.spawn(HostId(0), "doomed", Box::new(ExitsAfterDelay));
    cl.spawn(
        HostId(0),
        "local-sender",
        Box::new(OneShot {
            to: doomed,
            tag: 1,
            log: log.clone(),
        }),
    );
    cl.spawn(
        HostId(1),
        "remote-sender",
        Box::new(OneShot {
            to: doomed,
            tag: 2,
            log: log.clone(),
        }),
    );
    cl.run();
    let log = log.borrow();
    assert!(
        log.contains(&"err:1:NonexistentProcess".to_string()),
        "{log:?}"
    );
    assert!(
        log.contains(&"err:2:NonexistentProcess".to_string()),
        "{log:?}"
    );
}

#[test]
fn receive_with_segment_delivers_appended_data_and_plain_receive_drops_it() {
    struct SegServer {
        use_seg: bool,
        log: Log,
    }
    impl Program for SegServer {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => {
                    if self.use_seg {
                        api.receive_with_segment(0x1000, 512);
                    } else {
                        api.receive();
                    }
                }
                Outcome::ReceiveSeg { from, seg_len, .. } => {
                    let data = api.mem_read(0x1000, seg_len as usize).unwrap();
                    let ok = data.iter().all(|&b| b == 0xEE);
                    self.log.borrow_mut().push(format!("seg:{seg_len}:{ok}"));
                    api.reply(Message::empty(), from).unwrap();
                    api.exit();
                }
                Outcome::Receive { from, .. } => {
                    self.log.borrow_mut().push("plain".to_string());
                    api.reply(Message::empty(), from).unwrap();
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    struct SegSender {
        to: Pid,
    }
    impl Program for SegSender {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => {
                    api.mem_fill(0x2000, 512, 0xEE).unwrap();
                    let mut m = Message::empty();
                    m.set_segment(0x2000, 512, Access::Read);
                    api.send(m, self.to);
                }
                _ => api.exit(),
            }
        }
    }

    for use_seg in [true, false] {
        let mut cl = cluster(2);
        let log: Log = Default::default();
        let server = cl.spawn(
            HostId(1),
            "server",
            Box::new(SegServer {
                use_seg,
                log: log.clone(),
            }),
        );
        cl.spawn(HostId(0), "sender", Box::new(SegSender { to: server }));
        cl.run();
        let log = log.borrow();
        if use_seg {
            assert_eq!(log.as_slice(), ["seg:512:true"]);
        } else {
            assert_eq!(log.as_slice(), ["plain"]);
        }
    }
}

#[test]
fn gettime_has_paper_granularity() {
    struct Timer {
        log: Log,
    }
    impl Program for Timer {
        fn resume(&mut self, api: &mut Api<'_>, outcome: Outcome) {
            match outcome {
                Outcome::Started => api.delay(v_sim::SimDuration::from_micros(12_345)),
                Outcome::Delay => {
                    let t = api.get_time();
                    // Truncated to 10 ms ticks.
                    self.log.borrow_mut().push(format!("{}", t.as_nanos()));
                    api.exit();
                }
                _ => api.exit(),
            }
        }
    }
    let mut cl = cluster(1);
    let log: Log = Default::default();
    cl.spawn(HostId(0), "timer", Box::new(Timer { log: log.clone() }));
    cl.run();
    let ns: u64 = log.borrow()[0].parse().unwrap();
    assert_eq!(ns % 10_000_000, 0, "GetTime must tick in 10 ms units");
    assert_eq!(ns, 10_000_000, "12.3 ms truncates to 10 ms");
}
