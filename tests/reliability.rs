//! Integration tests: exactly-once message-exchange semantics over an
//! unreliable network, the alien-pool bound, and transfer recovery.

use v_fs::client::{FsCall, FsClient, FsClientReport};
use v_fs::server::{FileServer, FileServerConfig};
use v_fs::{BlockStore, DiskModel};
use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_net::FaultPlan;
use v_sim::SimDuration;
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::measure::probe;
use v_workloads::mover::{Grantor, MoveDir, Mover};

fn storm_config(faults: FaultPlan) -> ClusterConfig {
    let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
    cfg.faults = faults;
    cfg.protocol.retransmit_timeout = SimDuration::from_millis(15);
    cfg.protocol.transfer_timeout = SimDuration::from_millis(15);
    cfg
}

#[test]
fn exchanges_complete_exactly_once_under_loss_dup_and_corruption() {
    let mut cl = Cluster::new(storm_config(FaultPlan {
        loss: 0.08,
        duplicate: 0.05,
        corrupt: 0.04,
    }));
    let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
    let rep = probe(Default::default());
    cl.spawn(
        HostId(0),
        "pinger",
        Box::new(Pinger::new(server, 400, rep.clone())),
    );
    cl.run();
    let r = rep.borrow();
    assert_eq!(r.iterations, 400);
    assert_eq!(r.failures, 0);
    // The payload word is checked per-exchange: duplicates delivered to
    // the application would show up as integrity errors.
    assert_eq!(r.integrity_errors, 0);
    let c = cl.kernel_stats(HostId(0));
    let s = cl.kernel_stats(HostId(1));
    assert!(c.retransmissions > 0, "storm must force retransmissions");
    assert!(
        s.duplicates_filtered > 0 || s.replies_retransmitted > 0,
        "server must have seen duplicates: {s:?}"
    );
    assert!(
        c.checksum_drops + s.checksum_drops > 0,
        "corruption must be caught"
    );
}

#[test]
fn bulk_transfers_recover_and_deliver_intact_data_under_loss() {
    for dir in [MoveDir::To, MoveDir::From] {
        let mut cl = Cluster::new(storm_config(FaultPlan {
            loss: 0.05,
            duplicate: 0.02,
            corrupt: 0.02,
        }));
        let rep = probe(Default::default());
        let mover = cl.spawn(
            HostId(0),
            "mover",
            Box::new(Mover::new(30, 8192, dir, 0x3C, rep.clone())),
        );
        cl.spawn(
            HostId(1),
            "grantor",
            Box::new(Grantor {
                mover,
                size: 8192,
                pattern: 0x3C,
                dir,
                report: rep.clone(),
            }),
        );
        cl.run();
        let r = rep.borrow();
        assert_eq!(r.iterations, 30, "{dir:?}: {r:?}");
        assert_eq!(r.failures, 0, "{dir:?}");
        // Content verified by the programs themselves.
        assert_eq!(r.integrity_errors, 0, "{dir:?}");
        let resumes = cl.kernel_stats(HostId(0)).transfer_resumes
            + cl.kernel_stats(HostId(1)).transfer_resumes;
        assert!(resumes > 0, "{dir:?}: loss must force transfer recovery");
    }
}

#[test]
fn file_content_survives_the_storm() {
    let mut cfg = storm_config(FaultPlan {
        loss: 0.05,
        duplicate: 0.03,
        corrupt: 0.03,
    });
    cfg.hosts[1].cpu = CpuSpeed::Mc68000At10MHz;
    let mut cl = Cluster::new(cfg);
    let mut store = BlockStore::new();
    store.create_with("f", &vec![0x11u8; 4096]).unwrap();
    let server = cl.spawn(
        HostId(1),
        "fileserver",
        Box::new(FileServer::new(
            FileServerConfig {
                disk: DiskModel::fixed(SimDuration::from_millis(1)),
                ..FileServerConfig::default()
            },
            store,
        )),
    );
    let rep = std::rc::Rc::new(std::cell::RefCell::new(FsClientReport::default()));
    let mut script = vec![FsCall::Open("f".into())];
    for round in 0u8..8 {
        script.push(FsCall::WriteFill {
            block: (round % 8) as u32,
            count: 512,
            fill: round * 7 + 1,
        });
        script.push(FsCall::ReadExpect {
            block: (round % 8) as u32,
            count: 512,
            expect: round * 7 + 1,
        });
    }
    script.push(FsCall::ReadLargeExpect {
        block: 7,
        count: 512,
        expect: 7 * 7 + 1,
    });
    cl.spawn(
        HostId(0),
        "fsclient",
        Box::new(FsClient::new(server, script, rep.clone())),
    );
    cl.run();
    let r = rep.borrow();
    assert!(r.done, "{:?}", *r);
    assert_eq!(r.errors, 0);
    assert_eq!(r.integrity_errors, 0);
}

#[test]
fn alien_pool_exhaustion_degrades_to_reply_pending_not_loss() {
    // 8 remote clients hammer a server whose kernel has only 2 alien
    // descriptors: messages get refused with reply-pending, senders
    // retry, and every exchange still completes.
    let mut cfg = ClusterConfig::three_mb().with_hosts(9, CpuSpeed::Mc68000At10MHz);
    cfg.protocol.alien_pool = 2;
    cfg.protocol.alien_keep = SimDuration::from_millis(5);
    cfg.protocol.retransmit_timeout = SimDuration::from_millis(10);
    let mut cl = Cluster::new(cfg);
    let server = cl.spawn(HostId(0), "echo", Box::new(EchoServer));
    let reps: Vec<_> = (1..=8)
        .map(|i| {
            let rep = probe(Default::default());
            cl.spawn(
                HostId(i),
                "pinger",
                Box::new(Pinger::new(server, 50, rep.clone())),
            );
            rep
        })
        .collect();
    cl.run();
    for rep in &reps {
        let r = rep.borrow();
        assert_eq!(r.iterations, 50);
        assert_eq!(r.failures, 0);
    }
    let s = cl.kernel_stats(HostId(0));
    assert!(
        s.aliens_exhausted > 0 && s.reply_pending_sent > 0,
        "pool pressure must be visible: {s:?}"
    );
}

#[test]
fn ten_mb_learned_addressing_discovers_hosts() {
    let mut cl = Cluster::new(ClusterConfig::ten_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz));
    let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
    let rep = probe(Default::default());
    cl.spawn(
        HostId(0),
        "pinger",
        Box::new(Pinger::new(server, 50, rep.clone())),
    );
    cl.run();
    assert!(rep.borrow().clean());
    // The first packet went out by broadcast; afterwards the mapping is
    // learned and traffic is unicast.
    let m = cl.medium_stats();
    assert!(m.frames_sent >= 100);
    // Deliveries ≈ frames (unicast) plus one extra per broadcast victim.
    let overhead = m.deliveries - m.frames_sent;
    assert!(
        overhead <= 4,
        "learned addressing should quickly stop broadcasting: {m:?}"
    );
}
