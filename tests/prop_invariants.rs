//! Property-based integration tests: protocol invariants under arbitrary
//! workload shapes and adversarial network conditions.

use proptest::prelude::*;

use v_kernel::{Cluster, ClusterConfig, CpuSpeed, HostId};
use v_net::FaultPlan;
use v_sim::SimDuration;
use v_workloads::echo::{EchoServer, Pinger};
use v_workloads::measure::probe;
use v_workloads::mover::{Grantor, MoveDir, Mover};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exchanges complete exactly once for any loss/dup/corrupt mix the
    /// retransmission budget can beat.
    #[test]
    fn exchanges_survive_any_moderate_fault_mix(
        loss in 0.0f64..0.10,
        dup in 0.0f64..0.08,
        corrupt in 0.0f64..0.08,
        seed in any::<u64>(),
        n in 20u64..120,
    ) {
        let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
        cfg.faults = FaultPlan { loss, duplicate: dup, corrupt };
        cfg.seed = seed;
        cfg.protocol.retransmit_timeout = SimDuration::from_millis(10);
        let mut cl = Cluster::new(cfg);
        let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
        let rep = probe(Default::default());
        cl.spawn(HostId(0), "ping", Box::new(Pinger::new(server, n, rep.clone())));
        cl.run();
        let r = rep.borrow();
        prop_assert_eq!(r.iterations, n);
        prop_assert_eq!(r.failures, 0);
        prop_assert_eq!(r.integrity_errors, 0);
    }

    /// Bulk transfers deliver byte-exact data for any size (including
    /// non-chunk-aligned) in both directions, under loss.
    #[test]
    fn transfers_deliver_exact_bytes(
        size in 1u32..6000,
        to in any::<bool>(),
        loss in 0.0f64..0.06,
        seed in any::<u64>(),
    ) {
        let dir = if to { MoveDir::To } else { MoveDir::From };
        let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At10MHz);
        cfg.faults = FaultPlan { loss, ..FaultPlan::NONE };
        cfg.seed = seed;
        cfg.protocol.transfer_timeout = SimDuration::from_millis(10);
        cfg.protocol.retransmit_timeout = SimDuration::from_millis(10);
        let mut cl = Cluster::new(cfg);
        let rep = probe(Default::default());
        let mover = cl.spawn(
            HostId(0),
            "mover",
            Box::new(Mover::new(3, size, dir, 0xA7, rep.clone())),
        );
        cl.spawn(
            HostId(1),
            "grantor",
            Box::new(Grantor { mover, size, pattern: 0xA7, dir, report: rep.clone() }),
        );
        cl.run();
        let r = rep.borrow();
        prop_assert_eq!(r.iterations, 3);
        prop_assert_eq!(r.failures, 0);
        prop_assert_eq!(r.integrity_errors, 0);
    }

    /// Simulation determinism: identical configuration and seed produce
    /// identical timing and identical protocol statistics.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), n in 10u64..60) {
        let run = || {
            let mut cfg = ClusterConfig::three_mb().with_hosts(2, CpuSpeed::Mc68000At8MHz);
            cfg.faults = FaultPlan { loss: 0.05, duplicate: 0.02, corrupt: 0.02 };
            cfg.seed = seed;
            cfg.protocol.retransmit_timeout = SimDuration::from_millis(10);
            let mut cl = Cluster::new(cfg);
            let server = cl.spawn(HostId(1), "echo", Box::new(EchoServer));
            let rep = probe(Default::default());
            cl.spawn(HostId(0), "ping", Box::new(Pinger::new(server, n, rep.clone())));
            cl.run();
            let r = rep.borrow();
            (
                r.elapsed().as_nanos(),
                cl.kernel_stats(HostId(0)).retransmissions,
                cl.medium_stats().frames_sent,
                cl.now().as_nanos(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
